"""Seeded source-level race bugs: proof the static pass has teeth.

Each mutation is a small, realistic surgery on the *real* protocol source
(string-level, so the doctored module is what a buggy patch would look
like) paired with the exact new finding key the race pass must produce.
The test suite applies each via ``source_overrides`` — nothing on disk
changes — and asserts the finding appears and that it is *new* relative
to the nominal tree.

The ``reservation-leak`` entry is the static twin of the runtime
``reservation-leak`` mutation in
:mod:`repro.analysis.explore.mutations`: the same bug family, caught
once by AST analysis here and once by the chaos harness there (and
confirmed by the :mod:`repro.analysis.races.sanitizer` at runtime).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Tuple

_TARGET = "core/directory_engine.py"


@dataclass(frozen=True)
class SourceMutation:
    """One seeded bug: a source transform plus its expected finding."""

    name: str
    description: str
    rel_path: str                       #: package-relative file to doctor
    transform: Callable[[str], str]
    expected_key: str                   #: finding key that must appear


def _reservation_leak(src: str) -> str:
    """Reservation releases become no-ops: once a directory reserves
    itself for a starving chunk it stays reserved forever (the runtime
    twin patches ``_release_reservation`` to ``pass``)."""
    return src.replace("self.reserved_for = None",
                       "self.reserved_for = ident")


def _recall_watch_leak(src: str) -> str:
    """Every consumption of a recall watch entry is dropped (admission
    time and the failure paths alike): ``recall_watch`` grows on every
    OCI recall and is never emptied."""
    out = re.sub(r"self\.recall_watch\.discard\([^)]*\)",
                 "self.recall_watch.copy()", src)
    if out == src:
        raise ValueError("recall-watch-leak: no discard sites found")
    return out


def _fail_group_reorder(src: str) -> str:
    """``_fail_group`` multicasts ``G_FAILURE`` *before* recording the
    failure in ``cst``/``failed_cids``: a member's reaction (or a
    re-delivered message for the same cid) can race the late update."""
    block = ("        self.cst.pop(cid, None)\n"
             "        self.failed_cids.add(cid)\n")
    out = src.replace(block, "", 1)
    if out == src:
        raise ValueError("fail-group-reorder: state-update block not found")
    hook = "        if entry.leader_here:\n"
    if hook not in out:
        raise ValueError("fail-group-reorder: leader branch not found")
    return out.replace(hook, block + hook, 1)


SOURCE_MUTATIONS: Dict[str, SourceMutation] = {
    m.name: m for m in (
        SourceMutation(
            name="reservation-leak",
            description=("starvation reservations are never released; "
                         "reserved_for loses all cleanup writes"),
            rel_path=_TARGET,
            transform=_reservation_leak,
            expected_key=("SB504 src/repro/core/directory_engine.py::"
                          "ScalableBulkDirectory:reserved_for:leak")),
        SourceMutation(
            name="recall-watch-leak",
            description=("OCI recall watch entries are added but never "
                         "consumed at admission time"),
            rel_path=_TARGET,
            transform=_recall_watch_leak,
            expected_key=("SB504 src/repro/core/directory_engine.py::"
                          "ScalableBulkDirectory:recall_watch:leak")),
        SourceMutation(
            name="fail-group-reorder",
            description=("G_FAILURE is multicast before the collision "
                         "module records the failure locally"),
            rel_path=_TARGET,
            transform=_fail_group_reorder,
            expected_key=("SB502 src/repro/core/directory_engine.py::"
                          "ScalableBulkDirectory._fail_group->G_FAILURE")),
    )
}


def overrides_for(name: str, pkg_dir: Path) -> Tuple[Dict[str, str], str]:
    """(source_overrides, expected finding key) for one seeded mutation."""
    mutation = SOURCE_MUTATIONS[name]
    original = (pkg_dir / mutation.rel_path).read_text()
    return {mutation.rel_path: mutation.transform(original)}, \
        mutation.expected_key


__all__ = ["SOURCE_MUTATIONS", "SourceMutation", "overrides_for"]
