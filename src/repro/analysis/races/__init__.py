"""SB5xx concurrency analysis: static state-access races + runtime sanitizer.

The paper's correctness argument (Section 3's preemption/commit rules)
hinges on every shared protocol structure — CST entries, group leadership
state, directory reservations — being mutated only under well-defined
message orderings.  This package checks that mechanically:

* :mod:`model` extracts, from the AST of the protocol engines, a
  *state-access model*: for every message handler, the per-module
  attributes it reads and writes and the messages it sends (with source
  positions), transitively closed over same-class helper calls;
* :mod:`concurrency` builds the message-causality graph implied by the
  dispatch tables and send sites, expands the directory role into
  self/other instances (a module's own ``commit_request`` and a
  predecessor's ``g`` are *different* causal sources even though both are
  "the dir role"), and decides which handler pairs can be in flight for
  the same chunk simultaneously via dominator analysis;
* :mod:`rules` crosses the two into findings SB501–SB504;
* :mod:`sanitizer` is the opt-in runtime counterpart: it instruments the
  same state objects during real runs, records actual access
  interleavings through the obs bus, and
* :mod:`confirm` labels each static finding CONFIRMED (with a
  ddmin-shrunk replayable schedule) or UNOBSERVED;
* :mod:`mutations` holds seeded source-level race bugs proving the static
  pass has teeth.

Entry points: :func:`lint_races` (the static pass, used by
``python -m repro lint --races``) and
:func:`repro.analysis.races.confirm.confirm_findings`.
"""

from repro.analysis.races.model import (HandlerModel, StateModel,
                                        extract_state_model)
from repro.analysis.races.rules import lint_races

__all__ = ["HandlerModel", "StateModel", "extract_state_model", "lint_races"]
