"""Pass 1: handler-coverage linter (rules SB001-SB004).

The protocols dispatch messages through hand-written ``if mtype is
MessageType.X`` chains, and the set of types each role must handle is a
*distributed* fact: the sender lives in one file, the dispatch table in
another.  This pass recovers both sides from the AST and cross-references
them:

* every message type sent to a directory / core / agent must have a
  dispatch branch in some class of that role within the same protocol
  family (SB001);
* every ``_on_*`` handler method must be reachable from a dispatch table
  or another method (SB002);
* a directory/agent handler that mutates module state but neither sends a
  message nor schedules an event advances protocol state in zero simulated
  time — flagged so such transitions are at least deliberate (SB003);
* every type declared in ``network/message.py`` must appear on the wire
  somewhere (SB004).

The entry point is :func:`lint_handlers`; tests can point it at modified
source trees (or inject doctored module sources via ``source_overrides``)
to prove that seeded defects are caught.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding

#: protocol family -> module files (relative to the ``repro`` package).
FAMILY_SOURCES: Dict[str, Tuple[str, ...]] = {
    "scalablebulk": ("core/directory_engine.py", "core/processor_engine.py"),
    "bulksc": ("baselines/bulksc.py",),
    "tcc": ("baselines/tcc.py",),
    "seq": ("baselines/seq.py",),
}

#: coherence substrate, shared by every family: base dispatch + senders.
SUBSTRATE_SOURCES: Tuple[str, ...] = (
    "memory/directory.py", "protocols/base.py", "cpu/core.py",
    "memory/hierarchy.py",
)

MESSAGE_DECLS = "network/message.py"

_SEND_METHODS = {"unicast", "multicast", "broadcast"}
_SCHED_METHODS = {"schedule", "schedule_at"}
_MUTATOR_METHODS = {"add", "append", "discard", "remove", "pop", "clear",
                    "update", "setdefault", "extend", "popitem"}


# ----------------------------------------------------------------------
# Per-module extraction
# ----------------------------------------------------------------------
@dataclass
class ClassInfo:
    name: str
    role: Optional[str]                  #: "dir" | "core" | "agent" | None
    line: int
    dispatch: Dict[str, str] = field(default_factory=dict)  #: mtype -> method
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    calls: Dict[str, Set[str]] = field(default_factory=dict)  #: m -> self.m2
    sends_or_schedules: Set[str] = field(default_factory=set)
    mutates_self: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    path: str                            #: repo-relative path
    classes: List[ClassInfo] = field(default_factory=list)
    #: (mtype name, destination kind, line); kind in dir/core/agent/unknown
    sends: List[Tuple[str, str, int]] = field(default_factory=list)


def _role_of_class(node: ast.ClassDef) -> Optional[str]:
    names = [node.name] + [ast.unparse(b) for b in node.bases]
    text = " ".join(names)
    if "Arbiter" in text or "Vendor" in text:
        return "agent"
    if "Directory" in text:
        return "dir"
    if "Engine" in text or node.name == "Core":
        return "core"
    return None


def _mtype_names(expr: ast.AST) -> List[str]:
    """All ``MessageType.X`` attribute references inside ``expr``."""
    out = []
    for node in ast.walk(expr):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "MessageType"):
            out.append(node.attr)
    return out


def _is_mtype_probe(expr: ast.AST) -> bool:
    """Does ``expr`` read ``msg.mtype`` or a local named ``mtype``?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "mtype":
            return True
        if isinstance(node, ast.Name) and node.id == "mtype":
            return True
    return False


def _handler_target(body: Sequence[ast.stmt]) -> Optional[str]:
    """The ``self._on_x(msg)`` callee a dispatch branch delegates to."""
    for stmt in body:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"):
                return node.func.attr
    return None


#: Methods whose if/elif chains over ``msg.mtype`` are dispatch tables.
#: ``_dispatch`` is the profiling-era idiom: ``handle_message`` wraps the
#: chain in an optional profiler scope and delegates the branching here.
DISPATCH_METHODS = ("handle_message", "handle_protocol_message", "_dispatch")


def _extract_dispatch(fn: ast.FunctionDef, into: Dict[str, str]) -> None:
    """Parse an if/elif dispatch chain over the message type.

    Handles ``is`` / ``==`` / ``in (tuple)`` comparisons, and the negated
    guard idiom ``if mtype is not MessageType.X: raise`` (the rest of the
    function then handles X).
    """
    def visit_if(node: ast.If) -> None:
        test = node.test
        if isinstance(test, ast.Compare) and _is_mtype_probe(test.left):
            op = test.ops[0]
            names = _mtype_names(test)
            if isinstance(op, (ast.Is, ast.Eq, ast.In)) and names:
                target = _handler_target(node.body) or fn.name
                for name in names:
                    into.setdefault(name, target)
            elif isinstance(op, (ast.IsNot, ast.NotEq)) and names:
                # negated guard: the *function* handles these types
                raises = any(isinstance(s, (ast.Raise, ast.Return))
                             for s in node.body)
                if raises:
                    for name in names:
                        into.setdefault(name, fn.name)
        for stmt in node.orelse:
            if isinstance(stmt, ast.If):
                visit_if(stmt)

    for stmt in fn.body:
        if isinstance(stmt, ast.If):
            visit_if(stmt)


def _scan_method(cls: ClassInfo, fn: ast.FunctionDef) -> None:
    callees: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            base = func.value
            # self.method(...)
            if isinstance(base, ast.Name) and base.id == "self":
                callees.add(func.attr)
            # self.network.unicast / self.sim.schedule  (any depth)
            if func.attr in _SEND_METHODS | _SCHED_METHODS:
                cls.sends_or_schedules.add(fn.name)
            # self.attr.add(...) and friends mutate module state
            if (func.attr in _MUTATOR_METHODS
                    and isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"):
                cls.mutates_self.add(fn.name)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for t in targets:
                # self.x = ... / self.x[k] = ...
                probe = t
                while isinstance(probe, ast.Subscript):
                    probe = probe.value
                if (isinstance(probe, ast.Attribute)
                        and isinstance(probe.value, ast.Name)
                        and probe.value.id == "self"):
                    cls.mutates_self.add(fn.name)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                probe = t
                while isinstance(probe, ast.Subscript):
                    probe = probe.value
                if (isinstance(probe, ast.Attribute)
                        and isinstance(probe.value, ast.Name)
                        and probe.value.id == "self"):
                    cls.mutates_self.add(fn.name)
    cls.calls[fn.name] = callees


def _dst_kind(expr: ast.AST) -> str:
    """Destination kind of a send: dir / core / agent / unknown."""
    text = ast.unparse(expr)
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = (node.func.id if isinstance(node.func, ast.Name)
                    else getattr(node.func, "attr", ""))
            if name == "dir_node":
                return "dir"
            if name == "core_node":
                return "core"
            if name == "arbiter_node":
                return "agent"
    if ".arbiter." in text or ".vendor." in text or "arbiter_node" in text:
        return "agent"
    if "self.node" == text:
        return "unknown"
    return "unknown"


def _resolve_mtype_arg(arg: ast.AST, fn: Optional[ast.FunctionDef]
                       ) -> List[str]:
    """Message-type names a send's first argument can take."""
    names = _mtype_names(arg)
    if names:
        return names
    if isinstance(arg, ast.Name) and fn is not None:
        # e.g. reply = MessageType.A if dirty else MessageType.B
        out: List[str] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id == arg.id:
                        out.extend(_mtype_names(node.value))
        return out
    return []


def _extract_module(path_label: str, source: str) -> ModuleInfo:
    tree = ast.parse(source)
    info = ModuleInfo(path=path_label)

    # enclosing-function map for resolving variable message types
    func_of: Dict[int, ast.FunctionDef] = {}
    for fn in [n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]:
        for node in ast.walk(fn):
            func_of.setdefault(id(node), fn)

    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_METHODS and node.args):
            mtypes = _resolve_mtype_arg(node.args[0], func_of.get(id(node)))
            kind = (_dst_kind(node.args[2]) if len(node.args) >= 3
                    else "unknown")
            for name in mtypes:
                info.sends.append((name, kind, node.lineno))

    for cnode in tree.body:
        if not isinstance(cnode, ast.ClassDef):
            continue
        cls = ClassInfo(name=cnode.name, role=_role_of_class(cnode),
                        line=cnode.lineno)
        for item in cnode.body:
            if isinstance(item, ast.FunctionDef):
                cls.methods[item.name] = item
                _scan_method(cls, item)
                if item.name in DISPATCH_METHODS:
                    _extract_dispatch(item, cls.dispatch)
        info.classes.append(cls)
    return info


# ----------------------------------------------------------------------
# Cross-referencing
# ----------------------------------------------------------------------
def _reaches_send_or_schedule(cls: ClassInfo, method: str) -> bool:
    """Transitively (within the class): does ``method`` send or schedule?

    Calls to methods *not* defined in this module (inherited helpers like
    ``apply_commit``) are conservatively assumed to advance time, so the
    rule only fires on handlers whose whole effect is local mutation.
    """
    seen: Set[str] = set()
    stack = [method]
    while stack:
        m = stack.pop()
        if m in seen:
            continue
        seen.add(m)
        if m in cls.sends_or_schedules:
            return True
        for callee in cls.calls.get(m, ()):
            if callee not in cls.methods:
                return True  # inherited/unknown: assume it advances time
            stack.append(callee)
    return False


def _declared_types(source: str) -> Dict[str, int]:
    """Message type names declared on the MessageType enum, with lines."""
    tree = ast.parse(source)
    out: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "MessageType":
            for item in node.body:
                if isinstance(item, ast.Assign):
                    for t in item.targets:
                        if isinstance(t, ast.Name):
                            out[t.id] = item.lineno
    return out


def _piggybacked_types(source: str) -> Dict[str, Tuple[str, ...]]:
    """The ``PIGGYBACKED_TYPES`` mapping, read from the module's AST.

    Parsed statically (not imported) so fixture overrides of
    ``network/message.py`` see their own mapping.  Keys and carrier
    entries are ``MessageType.X`` attributes; anything else is ignored.
    """
    def name_of(node: ast.AST) -> Optional[str]:
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "MessageType"):
            return node.attr
        return None

    tree = ast.parse(source)
    out: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        targets = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == "PIGGYBACKED_TYPES"
                   for t in targets):
            continue
        if not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            rider = name_of(key) if key is not None else None
            if rider is None:
                continue
            carriers = []
            if isinstance(val, (ast.Tuple, ast.List)):
                carriers = [name_of(e) for e in val.elts]
            out[rider] = tuple(c for c in carriers if c)
    return out


def _read(pkg_dir: Path, rel: str,
          overrides: Optional[Dict[str, str]]) -> Optional[str]:
    if overrides and rel in overrides:
        return overrides[rel]
    file = pkg_dir / rel
    if not file.exists():
        return None
    return file.read_text()


def lint_handlers(pkg_dir: Optional[Path] = None,
                  source_overrides: Optional[Dict[str, str]] = None
                  ) -> List[Finding]:
    """Run the handler-coverage pass over the installed ``repro`` package.

    ``source_overrides`` maps package-relative paths to replacement source
    text — used by tests to inject seeded defects without touching disk.
    """
    if pkg_dir is None:
        import repro
        pkg_dir = Path(repro.__file__).resolve().parent

    findings: List[Finding] = []
    modules: Dict[str, ModuleInfo] = {}
    for rel in set(sum(FAMILY_SOURCES.values(), ())) | set(SUBSTRATE_SOURCES):
        src = _read(pkg_dir, rel, source_overrides)
        if src is not None:
            modules[rel] = _extract_module("src/repro/" + rel, src)

    substrate = [modules[r] for r in SUBSTRATE_SOURCES if r in modules]

    all_sent: Set[str] = set()
    for family, rels in FAMILY_SOURCES.items():
        mods = [modules[r] for r in rels if r in modules]
        if not mods:
            continue
        handled: Dict[str, Set[str]] = {"dir": set(), "core": set(),
                                        "agent": set()}
        for mod in mods + substrate:
            for cls in mod.classes:
                if cls.role in handled:
                    handled[cls.role] |= set(cls.dispatch)
        # substrate sends count against every family's dispatch tables
        sends = [(m, k, ln, mod.path) for mod in mods + substrate
                 for (m, k, ln) in mod.sends]
        any_handled = handled["dir"] | handled["core"] | handled["agent"]
        for mtype, kind, line, path in sends:
            all_sent.add(mtype)
            ok = (mtype in handled.get(kind, set()) if kind != "unknown"
                  else mtype in any_handled)
            if not ok:
                findings.append(Finding(
                    code="SB001", path=path, line=line,
                    anchor=f"{family}/{kind}/{mtype}",
                    message=(f"{mtype} is sent to role '{kind}' but no "
                             f"{family} {kind}-side dispatch handles it")))

        # SB002 / SB003 are per-class, computed once per family module
        for mod in mods:
            for cls in mod.classes:
                dispatched = set(cls.dispatch.values())
                called_somewhere = set().union(*cls.calls.values()) \
                    if cls.calls else set()
                for name, fn in cls.methods.items():
                    if (name.startswith("_on_")
                            and name not in dispatched
                            and name not in called_somewhere):
                        findings.append(Finding(
                            code="SB002", path=mod.path, line=fn.lineno,
                            anchor=f"{cls.name}.{name}",
                            message=(f"{cls.name}.{name} is never dispatched "
                                     f"or called")))
                if cls.role in ("dir", "agent"):
                    for mtype, name in cls.dispatch.items():
                        if name not in cls.methods:
                            continue
                        if (name in cls.mutates_self
                                and not _reaches_send_or_schedule(cls, name)):
                            findings.append(Finding(
                                code="SB003", path=mod.path,
                                line=cls.methods[name].lineno,
                                anchor=f"{cls.name}.{name}",
                                message=(f"{cls.name}.{name} (handling "
                                         f"{mtype}) mutates module state but "
                                         f"sends/schedules nothing")))

    decl_src = _read(pkg_dir, MESSAGE_DECLS, source_overrides)
    if decl_src is not None:
        piggybacked = _piggybacked_types(decl_src)
        for name, line in _declared_types(decl_src).items():
            carriers = piggybacked.get(name)
            if carriers is not None:
                # A payload-flag type: sound iff its carriers fly and it
                # itself never appears on the wire as a standalone packet.
                missing = [c for c in carriers if c not in all_sent]
                if name in all_sent:
                    findings.append(Finding(
                        code="SB004", path="src/repro/" + MESSAGE_DECLS,
                        line=line, anchor=f"MessageType.{name}",
                        message=(f"MessageType.{name} is declared as piggy-"
                                 f"backed (on {', '.join(carriers)}) but is "
                                 f"also sent as a standalone packet")))
                elif missing:
                    findings.append(Finding(
                        code="SB004", path="src/repro/" + MESSAGE_DECLS,
                        line=line, anchor=f"MessageType.{name}",
                        message=(f"MessageType.{name} piggy-backs on "
                                 f"{', '.join(missing)}, which "
                                 f"{'is' if len(missing) == 1 else 'are'} "
                                 f"never sent")))
            elif name not in all_sent:
                findings.append(Finding(
                    code="SB004", path="src/repro/" + MESSAGE_DECLS,
                    line=line, anchor=f"MessageType.{name}",
                    message=f"MessageType.{name} is declared but never sent"))

    return findings


__all__ = ["FAMILY_SOURCES", "SUBSTRATE_SOURCES", "lint_handlers"]
