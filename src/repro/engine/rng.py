"""Deterministic, stream-splittable randomness.

Every stochastic component (workload generators, hash-mask selection,
backoff jitter) draws from a `DeterministicRng` derived from the experiment
seed plus a textual stream label, so adding a new consumer never perturbs
the random streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A labelled wrapper around ``random.Random``.

    ``split(label)`` derives an independent child stream whose seed depends
    only on (parent seed, label) — never on draw order.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        self._rng = random.Random(self._derive(seed, label))

    @staticmethod
    def _derive(seed: int, label: str) -> int:
        digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def split(self, label: str) -> "DeterministicRng":
        """Derive an independent child stream keyed by ``label``."""
        return DeterministicRng(self._derive(self.seed, self.label + "/" + label), label)

    # -- draw helpers ---------------------------------------------------
    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._rng.sample(seq, k)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including the first success."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p={p} out of (0, 1]")
        count = 1
        while self._rng.random() >= p:
            count += 1
        return count

    def zipf_index(self, n: int, s: float = 1.0) -> int:
        """Draw an index in [0, n) skewed toward low indices.

        ``s = 0`` is uniform; larger ``s`` concentrates mass on the popular
        (low) indices.  This is a power-law popularity skew — cheap, and
        close enough to Zipf for working-set modelling.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if s <= 0:
            return self._rng.randrange(n)
        k = int(n * (self._rng.random() ** (1.0 + s)))
        return min(k, n - 1)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    def randbits(self, k: int) -> int:
        return self._rng.getrandbits(k)

    def iter_ints(self, lo: int, hi: int) -> Iterator[int]:
        while True:
            yield self._rng.randint(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeterministicRng(seed={self.seed}, label={self.label!r})"


__all__ = ["DeterministicRng"]
