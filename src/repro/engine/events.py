"""Time-ordered event queue: the heart of the cycle-level simulator.

Components never busy-wait; they schedule a callback at an absolute or
relative cycle count.  Ties are broken by insertion order, which makes every
simulation fully deterministic for a given seed and configuration.

Schedule exploration (``repro.analysis.explore``) installs a *tie-breaker*
hook: when several events are due at the same cycle, the hook picks which
one runs next instead of the default insertion order.  With no hook
installed the simulator behaves exactly as before — the hook exists so the
model checker can systematically reorder same-cycle deliveries without
touching default determinism.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.obs.bus import NULL_BUS, NullBus

#: A tie-breaker receives the batch of live events due at the current
#: minimal time (in insertion order) and returns the index of the event to
#: run now; the rest are re-queued untouched.
TieBreaker = Callable[["List[Event]"], int]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that heap ordering is total and
    deterministic.  ``cancelled`` supports O(1) cancellation (the event stays
    in the heap but is skipped when popped).  ``tag`` is optional metadata
    (e.g. which message delivery this is) that schedule exploration uses to
    decide which same-cycle reorderings are physically meaningful; it never
    affects ordering.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    tag: Any = field(default=None, compare=False)
    #: Owning simulator, so cancellation can maintain its O(1) live-event
    #: counter without a heap scan.
    owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._live_events -= 1


class Simulator:
    """A deterministic discrete-event simulator with integer cycle time.

    Usage::

        sim = Simulator()
        sim.schedule(10, lambda: print("fires at cycle 10"))
        sim.run()
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_processed: int = 0
        #: Count of not-yet-cancelled queued events, maintained on
        #: schedule/cancel/execute so ``pending_events`` (and therefore
        #: ``quiescent()``, called on conservation-check hot paths) is O(1)
        #: instead of a full heap scan.
        self._live_events: int = 0
        #: Exploration hook: picks among same-cycle events (None = default
        #: insertion order, the fully deterministic seed behaviour).
        self.tie_breaker: Optional[TieBreaker] = None
        #: Instrumentation sink (repro.obs); the null bus makes every hook
        #: a guarded no-op, so the default run schedules nothing extra.
        self.obs: NullBus = NULL_BUS
        #: Host-time self-profiler (repro.obs.profile); None keeps the
        #: dispatch loop on the unguarded fast path.  The profiler only
        #: reads the host clock — it never schedules events or touches
        #: simulation state, so results are identical either way.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None],
                 tag: Any = None) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + int(delay), callback, tag=tag)

    def schedule_at(self, time: int, callback: Callable[[], None],
                    tag: Any = None) -> Event:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        ev = Event(time=int(time), seq=self._seq, callback=callback, tag=tag,
                   owner=self)
        self._seq += 1
        self._live_events += 1
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if self.tie_breaker is not None:
                ev = self._tie_break(ev)
            self.now = ev.time
            self._live_events -= 1
            # An executed event is no longer live: flagging it here makes a
            # late ``cancel()`` (e.g. from its own callback) a no-op instead
            # of a second counter decrement.
            ev.cancelled = True
            if self.obs.enabled:
                self.obs.sim_step(ev.time, len(self._heap))
            prof = self.profiler
            if prof is None:
                ev.callback()
            else:
                prof.enter("engine.dispatch")
                try:
                    ev.callback()
                finally:
                    prof.exit_dispatch(ev.time)
            self._events_processed += 1
            return True
        return False

    def _tie_break(self, first: Event) -> Event:
        """Collect every live event due at ``first.time`` and let the
        tie-breaker choose; the others are re-queued with their original
        (time, seq) so relative order among them is preserved."""
        batch = [first]
        while self._heap and self._heap[0].time == first.time:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                batch.append(ev)
        if len(batch) == 1:
            return first
        assert self.tie_breaker is not None
        idx = self.tie_breaker(batch)
        if not 0 <= idx < len(batch):
            raise IndexError(f"tie-breaker chose {idx} of {len(batch)}")
        chosen = batch.pop(idx)
        for ev in batch:
            heapq.heappush(self._heap, ev)
        return chosen

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        ``until`` stops the clock once the next event would fire after that
        cycle; ``max_events`` bounds total work (guards against protocol
        livelock bugs in tests).

        When ``until`` is given the clock always advances to ``until`` —
        including when the queue is empty or drains before that cycle — so
        callers see the same "time has passed" semantics whether or not
        anything was scheduled in the window.

        Dispatch is *batched*: all live events due at the current cycle are
        drained in one inner loop (one heap pop + one callback each)
        instead of re-entering :meth:`step`'s peek/pop dance per event.
        New events a callback schedules for the same cycle always carry a
        higher ``seq``, so they sort after the in-flight batch and the
        total (time, seq) execution order is identical to stepwise.  The
        tie-breaker, instrumentation-bus and profiler paths fall back to
        :meth:`step` per event — those hooks observe the exact stepwise
        sequence (``sim_step`` sees each intermediate heap length).
        """
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            head = heap[0]
            if head.cancelled:
                pop(heap)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            if (self.tie_breaker is not None or self.obs.enabled
                    or self.profiler is not None):
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events} at "
                        f"cycle {self.now}; possible livelock"
                    )
                continue
            # Fast path: drain the whole cycle.  Events are popped one at a
            # time (not batch-collected), so a callback that raises leaves
            # the rest of the cycle queued exactly as step() would, and a
            # callback that cancels a later same-cycle event is honoured by
            # the per-event cancelled check.
            t = head.time
            self.now = t
            while heap and heap[0].time == t:
                if (self.tie_breaker is not None or self.obs.enabled
                        or self.profiler is not None):
                    break  # a callback installed a hook: resume stepwise
                ev = pop(heap)
                if ev.cancelled:
                    continue
                self._live_events -= 1
                # An executed event is no longer live: flagging it here
                # makes a late cancel() a no-op (see step()).
                ev.cancelled = True
                ev.callback()
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events} at "
                        f"cycle {self.now}; possible livelock"
                    )
        if until is not None and until > self.now:
            self.now = until

    def _peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live_events

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def quiescent(self) -> bool:
        """True when no live events remain (used by conservation checks)."""
        return self.pending_events == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"


def drain(sim: Simulator, guard: int = 50_000_000) -> None:
    """Run ``sim`` to quiescence with a livelock guard (test helper)."""
    sim.run(max_events=guard)


__all__ = ["Event", "Simulator", "TieBreaker", "drain"]
