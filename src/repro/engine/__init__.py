"""Discrete-event simulation kernel used by every substrate.

The kernel is deliberately tiny: a time-ordered event queue (`Simulator`)
plus a deterministic, stream-splittable random-number helper
(`DeterministicRng`).  All cycle-level components (cores, caches, the NoC,
directory modules, protocol engines) schedule plain callables on the shared
`Simulator` instance.
"""

from repro.engine.events import Event, Simulator
from repro.engine.rng import DeterministicRng

__all__ = ["Event", "Simulator", "DeterministicRng"]
