"""2D torus geometry and dimension-order routing.

Tiles are numbered row-major on a ``rows x cols`` torus.  Routing is
deterministic dimension-order (X then Y) taking the shorter wrap direction
in each dimension, which is what makes per-link contention reproducible.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

Coord = Tuple[int, int]


class Torus2D:
    """A rows x cols torus of tiles with dimension-order routing."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("torus dimensions must be positive")
        self.rows = rows
        self.cols = cols

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coord(self, tile: int) -> Coord:
        """(row, col) of tile index ``tile``."""
        if not 0 <= tile < self.n_tiles:
            raise ValueError(f"tile {tile} out of range")
        return divmod(tile, self.cols)

    def tile(self, row: int, col: int) -> int:
        return (row % self.rows) * self.cols + (col % self.cols)

    def center_tile(self) -> int:
        """Tile closest to the geometric center (BulkSC arbiter placement)."""
        return self.tile(self.rows // 2, self.cols // 2)

    # ------------------------------------------------------------------
    # Distances and routes
    # ------------------------------------------------------------------
    def _axis_step(self, src: int, dst: int, size: int) -> int:
        """+1 / -1 step along one torus axis taking the shorter way."""
        if src == dst:
            return 0
        fwd = (dst - src) % size
        bwd = (src - dst) % size
        return 1 if fwd <= bwd else -1

    def hop_distance(self, a: int, b: int) -> int:
        """Minimal hop count between tiles ``a`` and ``b``."""
        (ra, ca), (rb, cb) = self.coord(a), self.coord(b)
        dr = min((rb - ra) % self.rows, (ra - rb) % self.rows)
        dc = min((cb - ca) % self.cols, (ca - cb) % self.cols)
        return dr + dc

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Links traversed from ``src`` to ``dst`` as (from_tile, to_tile) pairs.

        Dimension-order: resolve the column (X) dimension first, then rows.
        """
        links: List[Tuple[int, int]] = []
        r, c = self.coord(src)
        dst_r, dst_c = self.coord(dst)

        step = self._axis_step(c, dst_c, self.cols)
        while c != dst_c:
            nxt = (c + step) % self.cols
            links.append((self.tile(r, c), self.tile(r, nxt)))
            c = nxt

        step = self._axis_step(r, dst_r, self.rows)
        while r != dst_r:
            nxt = (r + step) % self.rows
            links.append((self.tile(r, c), self.tile(nxt, c)))
            r = nxt

        return links

    def neighbors(self, tile: int) -> Iterator[int]:
        r, c = self.coord(tile)
        seen = set()
        for nr, nc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
            t = self.tile(nr, nc)
            if t != tile and t not in seen:
                seen.add(t)
                yield t

    def average_distance(self) -> float:
        """Mean hop distance over all ordered tile pairs (diagnostics)."""
        total = 0
        n = self.n_tiles
        for a in range(n):
            for b in range(n):
                total += self.hop_distance(a, b)
        return total / (n * n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Torus2D({self.rows}x{self.cols})"


__all__ = ["Coord", "Torus2D"]
