"""On-chip interconnect: 2D torus NoC with per-link contention.

The machine in Figure 1 of the paper is a tiled multicore: each tile hosts
a core (+ private L1/L2) and one directory module, connected by a 2D torus
(Table 2: 7-cycle links, modelled after Das et al.'s NoC simulator).

This package provides:

* :mod:`repro.network.message` — every message type in the system,
  including the ten ScalableBulk types of Table 1, the coherence-miss
  messages, and the baseline-protocol messages, each tagged with the
  traffic class used by the paper's Figures 18/19.
* :mod:`repro.network.topology` — torus coordinates and dimension-order
  routing.
* :mod:`repro.network.noc` — the network itself: latency, per-link FIFO
  contention, delivery scheduling, and traffic accounting.
"""

from repro.network.message import (
    Message,
    MessageType,
    NodeRef,
    TrafficClass,
    arbiter_node,
    core_node,
    dir_node,
)
from repro.network.topology import Torus2D
from repro.network.noc import Network

__all__ = [
    "Message",
    "MessageType",
    "NodeRef",
    "TrafficClass",
    "Network",
    "Torus2D",
    "core_node",
    "dir_node",
    "arbiter_node",
]
