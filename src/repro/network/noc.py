"""The NoC: delivery latency, per-link FIFO contention, traffic accounting.

Latency model (pipelined wormhole approximation):

* each hop costs ``link_latency_cycles`` + ``router_latency_cycles``;
* the packet serializes once onto the network
  (``ceil(size / link_width)`` cycles);
* with contention enabled, every traversed link is occupied for the
  serialization time; a packet arriving at a busy link queues behind it
  (per-link "next free" bookkeeping — no extra simulator events per hop).

Same-tile delivery (e.g. a core talking to its co-located directory)
costs one cycle and uses no links.

All traffic is counted per :class:`~repro.network.message.TrafficClass`
for the paper's Figures 18/19.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.engine.events import Simulator
from repro.network.message import Message, MessageType, NodeRef, TrafficClass
from repro.network.topology import Torus2D
from repro.obs.bus import NULL_BUS, NullBus

Handler = Callable[[Message], None]

#: Exploration/fault hook: given (message, model latency) return extra
#: delay cycles (>= 0) to add before delivery.  See repro.analysis.explore
#: and repro.faults.  Hook output feeds ``send``'s per-flow FIFO clamp, so
#: no hook — however adversarial — can reorder a (src, dst) channel.
DelayHook = Callable[[Message, int], int]


def compose_delay_hooks(*hooks: Optional[DelayHook]) -> Optional[DelayHook]:
    """Chain delay hooks: extra delays add up, Nones drop out.

    Lets fault injection stack on top of an already-installed exploration
    hook instead of silently replacing it.  Returns None when no live hook
    remains, preserving the zero-overhead default path.
    """
    live = [h for h in hooks if h is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def chained(msg: Message, latency: int) -> int:
        return sum(max(0, int(h(msg, latency))) for h in live)

    return chained


class TrafficStats:
    """Per-class message and byte counters, plus latency accounting."""

    def __init__(self) -> None:
        self.messages_by_class: Counter = Counter()
        self.bytes_by_class: Counter = Counter()
        self.messages_by_type: Counter = Counter()
        self.total_messages = 0
        self.total_bytes = 0
        self.total_latency = 0
        self.total_hops = 0

    def record(self, msg: Message, latency: int, hops: int) -> None:
        self.messages_by_class[msg.traffic_class] += 1
        self.bytes_by_class[msg.traffic_class] += msg.size_bytes
        self.messages_by_type[msg.mtype] += 1
        self.total_messages += 1
        self.total_bytes += msg.size_bytes
        self.total_latency += latency
        self.total_hops += hops

    def class_counts(self) -> Dict[TrafficClass, int]:
        return dict(self.messages_by_class)

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.total_messages if self.total_messages else 0.0


class Network:
    """2D-torus network connecting cores, directories and central agents."""

    def __init__(self, config: SystemConfig, sim: Simulator) -> None:
        self.config = config
        self.sim = sim
        rows, cols = config.mesh_shape
        self.topology = Torus2D(rows, cols)
        self._handlers: Dict[NodeRef, Handler] = {}
        self.stats = TrafficStats()
        self.contention = config.network_contention
        #: Exploration hook: perturbs delivery latency (None = the exact
        #: deterministic latency model).
        self.delay_hook: Optional[DelayHook] = None
        #: Per-(src, dst) flow: cycle of the latest delivery scheduled so
        #: far.  Real links never reorder packets between the same pair of
        #: endpoints, and the grab circulation (Section 3.2) depends on
        #: that: ``send`` clamps every delivery to this time so a later
        #: small message cannot overtake an earlier large one on its flow.
        self._last_delivery: Dict[Tuple[NodeRef, NodeRef], int] = {}
        self._hop_cost = config.link_latency_cycles + config.router_latency_cycles
        self._link_width = config.link_width_bytes
        #: message size -> serialization cycles (link_width is fixed per
        #: network, so ceil-div per message is a table lookup)
        self._ser_cache: Dict[int, int] = {}
        #: links are interned to dense ints the first time a route touches
        #: them: the contention walk then indexes a flat list instead of
        #: hashing (from_tile, to_tile) tuples per hop.
        self._link_index: Dict[tuple, int] = {}
        self._link_free: list = []   #: link index -> earliest-free cycle
        #: (src_tile, dst_tile) -> (link indices, uncontended hop latency,
        #: hop count); routes are static under dimension-order routing, so
        #: they are computed once instead of re-allocated per message.
        self._route_cache: Dict[Tuple[int, int],
                                Tuple[Tuple[int, ...], int, int]] = {}
        #: Instrumentation sink (repro.obs); null bus = zero overhead.
        self.obs: NullBus = NULL_BUS
        #: Host-time self-profiler (repro.obs.profile); None = fast path.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register(self, node: NodeRef, handler: Handler) -> None:
        """Attach a message handler to an endpoint."""
        if node in self._handlers:
            raise ValueError(f"handler already registered for {node}")
        self._handlers[node] = handler

    def tile_of(self, node: NodeRef) -> int:
        """Physical tile hosting ``node``.

        Cores and directories are co-located index-to-tile; central agents
        live at the tile recorded in their index.
        """
        if node.kind in ("core", "dir", "agent"):
            return node.index % self.topology.n_tiles
        raise ValueError(f"unknown node kind {node.kind}")

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> int:
        """Inject ``msg`` now; returns the delivery latency in cycles."""
        # The handler check comes before *any* mutation (sent_at stamp,
        # link bookkeeping, FIFO clamp, stats) and before the profiler
        # scope opens: an unregistered destination raises with the network
        # exactly as it was and the profiler stack balanced.
        handler = self._handlers.get(msg.dst)
        if handler is None:
            raise KeyError(f"no handler registered for destination {msg.dst}")
        prof = self.profiler
        if prof is None:
            return self._send(msg, handler)
        prof.enter("noc.transit")
        try:
            return self._send(msg, handler)
        finally:
            prof.exit()

    def _send(self, msg: Message, handler: Handler) -> int:
        msg.sent_at = self.sim.now
        latency, hops = self._transit_time(msg)
        if self.delay_hook is not None:
            latency += max(0, int(self.delay_hook(msg, latency)))
        # No same-pair reordering, ever: point-to-point channels are
        # ordered, so a packet may not overtake (or be overtaken by) an
        # earlier one on its (src, dst) flow.  Without contention a small
        # message computes a shorter transit than a large one in flight
        # on the same flow; the clamp is what keeps the channel FIFO.
        flow = (msg.src, msg.dst)
        deliver_at = max(self.sim.now + latency,
                         self._last_delivery.get(flow, 0))
        self._last_delivery[flow] = deliver_at
        latency = deliver_at - self.sim.now
        self.stats.record(msg, latency, hops)
        if self.obs.enabled:
            # Same (time, seq, tag) as the uninstrumented path: the only
            # difference is the recv hook firing inside the delivery.
            self.obs.msg_send(self.sim.now, msg, latency, hops)
            obs = self.obs

            def _deliver(m: Message = msg, h: Handler = handler) -> None:
                obs.msg_recv(self.sim.now, m)
                h(m)

            self.sim.schedule(latency, _deliver,
                              tag=("deliver", msg.src, msg.dst, msg.uid))
        else:
            self.sim.schedule(latency, lambda m=msg, h=handler: h(m),
                              tag=("deliver", msg.src, msg.dst, msg.uid))
        return latency

    def _transit_time(self, msg: Message) -> tuple:
        src_tile = self.tile_of(msg.src)
        dst_tile = self.tile_of(msg.dst)
        if src_tile == dst_tile:
            return 1, 0

        size = msg.size_bytes
        serialization = self._ser_cache.get(size)
        if serialization is None:
            serialization = max(1, -(-size // self._link_width))
            self._ser_cache[size] = serialization
        cached = self._route_cache.get((src_tile, dst_tile))
        if cached is None:
            cached = self._intern_route(src_tile, dst_tile)
        route, route_hop_latency, n_hops = cached

        if not self.contention:
            return serialization + route_hop_latency, n_hops

        hop_cost = self._hop_cost
        now = self.sim.now
        time = now
        link_free = self._link_free
        for li in route:
            depart = link_free[li]
            if depart < time:
                depart = time
            link_free[li] = depart + serialization
            time = depart + hop_cost
        time += serialization  # tail flits drain on the final link
        return time - now, n_hops

    def _intern_route(self, src_tile: int,
                      dst_tile: int) -> Tuple[Tuple[int, ...], int, int]:
        """Compute, intern and cache the (src, dst) dimension-order route."""
        links = tuple(self.topology.route(src_tile, dst_tile))
        index = self._link_index
        free = self._link_free
        idxs = []
        for link in links:
            li = index.get(link)
            if li is None:
                li = index[link] = len(free)
                free.append(0)
            idxs.append(li)
        cached = (tuple(idxs), self._hop_cost * len(links), len(links))
        self._route_cache[(src_tile, dst_tile)] = cached
        return cached

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def unicast(self, mtype: MessageType, src: NodeRef, dst: NodeRef,
                ctag=None, **payload) -> Message:
        """Build and send a single message."""
        msg = Message(mtype=mtype, src=src, dst=dst, ctag=ctag, payload=payload)
        self.send(msg)
        return msg

    def multicast(self, mtype: MessageType, src: NodeRef, dsts, ctag=None,
                  **payload) -> list:
        """Send one copy of a message to each destination (no tree fanout)."""
        return [self.unicast(mtype, src, dst, ctag=ctag, **payload) for dst in dsts]

    # ------------------------------------------------------------------
    def link_utilization_snapshot(self) -> Dict[tuple, int]:
        """Per-link next-free times (congestion diagnostics).

        Keys are (from_tile, to_tile) links that some route has traversed;
        values are the earliest cycle each link frees up.
        """
        free = self._link_free
        return {link: free[li] for link, li in self._link_index.items()}


__all__ = ["DelayHook", "Handler", "Network", "TrafficStats",
           "compose_delay_hooks"]
