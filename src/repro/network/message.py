"""Message vocabulary for all four protocols plus the coherence substrate.

The ScalableBulk types follow Table 1 of the paper exactly:

===================  =========================================  ==========
Type                 Contents                                   Direction
===================  =========================================  ==========
COMMIT_REQUEST       C_Tag, W Sig, R Sig, g_vec                 Proc -> Dir(s)
G                    C_Tag, inval_vec  ("grab")                 Dir -> Dir
G_FAILURE            C_Tag                                      Dir -> Dir(s)
G_SUCCESS            C_Tag                                      Dir -> Dir(s)
COMMIT_FAILURE       C_Tag                                      Dir -> Proc
COMMIT_SUCCESS       C_Tag                                      Dir -> Proc
BULK_INV             C_Tag, W Sig                               Dir -> Proc(s)
BULK_INV_ACK         C_Tag                                      Proc -> Dir
COMMIT_DONE          C_Tag                                      Dir -> Dir(s)
COMMIT_RECALL        C_Tag, Dir ID (piggy-backed)               Proc -> Dir, Dir -> Dir
===================  =========================================  ==========

``COMMIT_RECALL`` is never a standalone packet: per the paper it rides on a
``BULK_INV_ACK`` and then on a ``COMMIT_DONE``.  We model that as a payload
flag on those carriers (zero extra network cost) while still counting the
recall event for protocol statistics.

Traffic classes match the paper's Figures 18/19 message characterization:
MemRd, RemoteShRd, RemoteDirtyRd, LargeCMessage (signature-carrying commit
messages), SmallCMessage (all other commit messages).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, NamedTuple, Optional, Tuple


class TrafficClass(Enum):
    """Message categories from the paper's traffic characterization."""

    MEM_RD = "MemRd"                    #: cache-line read satisfied by memory
    REMOTE_SH_RD = "RemoteShRd"         #: line read from a remote cache (shared)
    REMOTE_DIRTY_RD = "RemoteDirtyRd"   #: line read from a remote cache (dirty)
    LARGE_COMMIT = "LargeCMessage"      #: commit message carrying a signature
    SMALL_COMMIT = "SmallCMessage"      #: all other commit-protocol messages
    OTHER = "Other"                     #: miss-request/forward control traffic
                                        #: (the paper folds these into the read
                                        #: classes; our figure renderer does too)


class MessageType(Enum):
    """All message types across the substrate and the four protocols."""

    # --- coherence substrate (read misses; writes are lazy) -------------
    READ_REQ = "read_req"                 #: Proc -> Dir: L2 miss
    READ_NACK = "read_nack"               #: Dir -> Proc: line locked by a commit
    DATA_FROM_MEM = "data_from_mem"       #: Dir -> Proc: filled from memory
    FWD_READ = "fwd_read"                 #: Dir -> Proc(owner): forward request
    DATA_FROM_SHARER = "data_from_sharer"  #: owner -> Proc: clean remote hit
    DATA_FROM_OWNER = "data_from_owner"   #: owner -> Proc: dirty remote hit
    WRITEBACK = "writeback"               #: Proc -> Dir: dirty L2 eviction
    BULK_INV_NACK = "bulk_inv_nack"       #: Proc -> Dir: conservative (non-OCI)
                                          #: processor bounces an invalidation

    # --- ScalableBulk (paper Table 1) ------------------------------------
    COMMIT_REQUEST = "commit_request"
    G = "g"
    G_FAILURE = "g_failure"
    G_SUCCESS = "g_success"
    COMMIT_FAILURE = "commit_failure"
    COMMIT_SUCCESS = "commit_success"
    BULK_INV = "bulk_inv"
    BULK_INV_ACK = "bulk_inv_ack"
    COMMIT_DONE = "commit_done"
    COMMIT_RECALL = "commit_recall"       #: accounting only; always piggy-backed

    # --- BulkSC (centralized arbiter) -------------------------------------
    BSC_COMMIT_REQ = "bsc_commit_req"     #: Proc -> Arbiter, carries (R, W)
    BSC_OK = "bsc_ok"                     #: Arbiter -> Proc: permission granted
    BSC_NACK = "bsc_nack"                 #: Arbiter -> Proc: retry later
    BSC_W_TO_DIR = "bsc_w_to_dir"         #: Arbiter -> Dir(s): W for state update
    BSC_DIR_DONE = "bsc_dir_done"         #: Dir -> Arbiter: state updated

    # --- Scalable TCC ------------------------------------------------------
    TID_REQ = "tid_req"                   #: Proc -> central TID vendor
    TID_GRANT = "tid_grant"               #: vendor -> Proc
    TCC_PROBE = "tcc_probe"               #: Proc -> Dir in R/W set
    TCC_SKIP = "tcc_skip"                 #: Proc -> every other Dir (broadcast!)
    TCC_MARK = "tcc_mark"                 #: Proc -> Dir, one per written line
    TCC_INV = "tcc_inv"                   #: Dir -> sharer Proc
    TCC_INV_ACK = "tcc_inv_ack"           #: Proc -> Dir
    TCC_DIR_DONE = "tcc_dir_done"         #: Dir -> Proc: this dir finished TID
    TCC_COMMIT_DONE = "tcc_commit_done"   #: Proc -> Dir(s): release

    # --- SEQ (SEQ-PRO) -------------------------------------------------------
    SEQ_OCCUPY = "seq_occupy"             #: Proc -> Dir: occupy in ascending order
    SEQ_GRANT = "seq_grant"               #: Dir -> Proc
    SEQ_COMMIT = "seq_commit"             #: Proc -> Dir(s): all occupied, commit
    SEQ_INV = "seq_inv"                   #: Dir -> sharer Proc
    SEQ_INV_ACK = "seq_inv_ack"           #: Proc -> Dir
    SEQ_DONE = "seq_done"                 #: Dir -> Proc: this module finished
    SEQ_RELEASE = "seq_release"           #: Proc -> Dir: free the module (abort)


#: Byte sizes.  Signature-carrying messages are "large"; control messages
#: are small; data replies carry one 32 B line + header.  Signatures are
#: 2 Kbit registers but travel *compressed* (the paper: "the compressed R
#: and W signatures ... are sent to the directory modules"); at chunk
#: densities run-length coding lands around 3x compression.
HEADER_BYTES = 8
SIGNATURE_BYTES = 96           # 2 Kbit, compressed on the wire
LINE_BYTES = 32

_SIG_CARRIERS = {
    MessageType.COMMIT_REQUEST: 2 * SIGNATURE_BYTES + HEADER_BYTES,  # R and W
    MessageType.BULK_INV: SIGNATURE_BYTES + HEADER_BYTES,
    MessageType.BSC_COMMIT_REQ: 2 * SIGNATURE_BYTES + HEADER_BYTES,
    MessageType.BSC_W_TO_DIR: SIGNATURE_BYTES + HEADER_BYTES,
}

_DATA_CARRIERS = {
    MessageType.DATA_FROM_MEM,
    MessageType.DATA_FROM_SHARER,
    MessageType.DATA_FROM_OWNER,
}

_COMMIT_TYPES = {
    MessageType.COMMIT_REQUEST, MessageType.G, MessageType.G_FAILURE,
    MessageType.G_SUCCESS, MessageType.COMMIT_FAILURE, MessageType.COMMIT_SUCCESS,
    MessageType.BULK_INV, MessageType.BULK_INV_ACK, MessageType.COMMIT_DONE,
    MessageType.COMMIT_RECALL, MessageType.BULK_INV_NACK,
    MessageType.BSC_COMMIT_REQ, MessageType.BSC_OK, MessageType.BSC_NACK,
    MessageType.BSC_W_TO_DIR, MessageType.BSC_DIR_DONE,
    MessageType.TID_REQ, MessageType.TID_GRANT, MessageType.TCC_PROBE,
    MessageType.TCC_SKIP, MessageType.TCC_MARK, MessageType.TCC_INV,
    MessageType.TCC_INV_ACK, MessageType.TCC_DIR_DONE, MessageType.TCC_COMMIT_DONE,
    MessageType.SEQ_OCCUPY, MessageType.SEQ_GRANT, MessageType.SEQ_INV,
    MessageType.SEQ_INV_ACK, MessageType.SEQ_RELEASE, MessageType.SEQ_COMMIT,
    MessageType.SEQ_DONE,
}


def default_size_bytes(mtype: MessageType) -> int:
    """Wire size of a message of the given type."""
    if mtype in _SIG_CARRIERS:
        return _SIG_CARRIERS[mtype]
    if mtype in _DATA_CARRIERS:
        return LINE_BYTES + HEADER_BYTES
    return HEADER_BYTES + 8


def traffic_class_of(mtype: MessageType) -> TrafficClass:
    """Map a message type to the paper's Fig. 18/19 traffic class."""
    if mtype is MessageType.DATA_FROM_MEM:
        return TrafficClass.MEM_RD
    if mtype is MessageType.DATA_FROM_SHARER:
        return TrafficClass.REMOTE_SH_RD
    if mtype is MessageType.DATA_FROM_OWNER:
        return TrafficClass.REMOTE_DIRTY_RD
    if mtype in _SIG_CARRIERS:
        return TrafficClass.LARGE_COMMIT
    if mtype in _COMMIT_TYPES:
        return TrafficClass.SMALL_COMMIT
    # Miss-request and forward messages: replies carry the read class; the
    # figure renderer folds OTHER into the read class of the reply stream.
    return TrafficClass.OTHER


#: The three addressable roles on the NoC — processor engine, directory
#: module, centralized agent (BulkSC arbiter / TCC TID vendor).  Protocol
#: specs (:mod:`repro.protocols.spec`) and the SB6xx flow analysis use
#: these names; they match :class:`NodeRef.kind`.
ROLES: Tuple[str, ...] = ("core", "dir", "agent")


class NodeRef(NamedTuple):
    """Addressable endpoint on the NoC.

    ``kind`` is ``"core"``, ``"dir"`` or ``"agent"`` (central arbiter / TID
    vendor).  Cores and directories with the same index share a tile.
    """

    kind: str
    index: int

    def __str__(self) -> str:
        return f"{self.kind}{self.index}"


def core_node(i: int) -> NodeRef:
    return NodeRef("core", i)


def dir_node(i: int) -> NodeRef:
    return NodeRef("dir", i)


def arbiter_node(center_tile: int) -> NodeRef:
    """The centralized agent (BulkSC arbiter / TCC TID vendor)."""
    return NodeRef("agent", center_tile)


_msg_counter = itertools.count()


@dataclass
class Message:
    """One packet on the NoC."""

    mtype: MessageType
    src: NodeRef
    dst: NodeRef
    ctag: Optional[object] = None           #: chunk tag this message concerns
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    traffic_class: TrafficClass = TrafficClass.SMALL_COMMIT
    uid: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: int = -1
    is_commit_traffic: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes == 0:
            self.size_bytes = default_size_bytes(self.mtype)
        self.traffic_class = traffic_class_of(self.mtype)
        self.is_commit_traffic = self.mtype in _COMMIT_TYPES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Message({self.mtype.value}, {self.src}->{self.dst}, "
                f"ctag={self.ctag})")


SCALABLEBULK_TABLE1_TYPES = (
    MessageType.COMMIT_REQUEST, MessageType.G, MessageType.G_FAILURE,
    MessageType.G_SUCCESS, MessageType.COMMIT_FAILURE,
    MessageType.COMMIT_SUCCESS, MessageType.BULK_INV,
    MessageType.BULK_INV_ACK, MessageType.COMMIT_DONE,
    MessageType.COMMIT_RECALL,
)

#: Types that never travel as standalone packets: each rides as a payload
#: flag on the listed carrier types (zero extra network cost; the type
#: exists for Table 1 accounting).  The handler linter reads this mapping:
#: a piggy-backed type is exempt from SB004 (orphan type) as long as every
#: one of its carriers is actually sent — and conversely it is a finding
#: if a piggy-backed type ever appears on the wire as its own packet.
PIGGYBACKED_TYPES: Dict[MessageType, Tuple[MessageType, ...]] = {
    MessageType.COMMIT_RECALL: (MessageType.BULK_INV_ACK,
                                MessageType.COMMIT_DONE),
}

#: Per-family message vocabulary: which types belong to each protocol's
#: conversation (plus the shared coherence substrate).  The SB6xx flow
#: analysis scopes each family's extracted automaton to its own types —
#: this mapping, like ``PIGGYBACKED_TYPES``, is read statically from this
#: module's source so fixture overrides see their own vocabulary.  The
#: BULK_INV family (inv / ack / nack) is shared by ScalableBulk and
#: BulkSC: both drive the same bulk-invalidation sub-conversation.
FAMILY_TYPES: Dict[str, Tuple[MessageType, ...]] = {
    "scalablebulk": (
        MessageType.COMMIT_REQUEST, MessageType.G, MessageType.G_FAILURE,
        MessageType.G_SUCCESS, MessageType.COMMIT_FAILURE,
        MessageType.COMMIT_SUCCESS, MessageType.BULK_INV,
        MessageType.BULK_INV_ACK, MessageType.BULK_INV_NACK,
        MessageType.COMMIT_DONE, MessageType.COMMIT_RECALL,
    ),
    "bulksc": (
        MessageType.BSC_COMMIT_REQ, MessageType.BSC_OK, MessageType.BSC_NACK,
        MessageType.BSC_W_TO_DIR, MessageType.BSC_DIR_DONE,
        MessageType.BULK_INV, MessageType.BULK_INV_ACK,
        MessageType.BULK_INV_NACK,
    ),
    "tcc": (
        MessageType.TID_REQ, MessageType.TID_GRANT, MessageType.TCC_PROBE,
        MessageType.TCC_SKIP, MessageType.TCC_MARK, MessageType.TCC_INV,
        MessageType.TCC_INV_ACK, MessageType.TCC_DIR_DONE,
        MessageType.TCC_COMMIT_DONE,
    ),
    "seq": (
        MessageType.SEQ_OCCUPY, MessageType.SEQ_GRANT, MessageType.SEQ_COMMIT,
        MessageType.SEQ_INV, MessageType.SEQ_INV_ACK, MessageType.SEQ_DONE,
        MessageType.SEQ_RELEASE,
    ),
    "substrate": (
        MessageType.READ_REQ, MessageType.READ_NACK,
        MessageType.DATA_FROM_MEM, MessageType.FWD_READ,
        MessageType.DATA_FROM_SHARER, MessageType.DATA_FROM_OWNER,
        MessageType.WRITEBACK,
    ),
}

__all__ = [
    "FAMILY_TYPES",
    "HEADER_BYTES",
    "LINE_BYTES",
    "Message",
    "MessageType",
    "NodeRef",
    "PIGGYBACKED_TYPES",
    "ROLES",
    "SCALABLEBULK_TABLE1_TYPES",
    "SIGNATURE_BYTES",
    "TrafficClass",
    "arbiter_node",
    "core_node",
    "default_size_bytes",
    "dir_node",
    "traffic_class_of",
]
