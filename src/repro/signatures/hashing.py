"""Hash families for banked Bloom signatures.

Two interchangeable families:

* ``H3HashFamily`` — the classic hardware-friendly H3 scheme: each output
  bit is the parity of the address ANDed with a fixed random mask.  This is
  what Bulk-style signature hardware implements with XOR trees.
* ``MultiplicativeHashFamily`` — a Knuth multiplicative hash, much faster in
  Python with statistically similar dispersion; the default for large runs.

Both are deterministic given a seed, and both map a line address to one bit
index per bank.
"""

from __future__ import annotations

from typing import List, Protocol

from repro.engine.rng import DeterministicRng


class HashFamily(Protocol):
    """Maps a line address to a bit index within each bank."""

    n_banks: int
    bank_bits: int

    def bit_index(self, bank: int, line_addr: int) -> int:
        """Index of the bit that ``line_addr`` sets within ``bank``."""
        ...


class H3HashFamily:
    """H3 parity hashing: output bit j = parity(addr & mask[bank][j])."""

    ADDRESS_BITS = 42  # physical line-address width we hash over

    def __init__(self, n_banks: int, bank_bits: int, seed: int = 2010) -> None:
        if bank_bits & (bank_bits - 1):
            raise ValueError("bank_bits must be a power of two")
        self.n_banks = n_banks
        self.bank_bits = bank_bits
        self._index_bits = bank_bits.bit_length() - 1
        rng = DeterministicRng(seed, "h3-masks")
        self._masks: List[List[int]] = [
            [rng.randbits(self.ADDRESS_BITS) | 1 for _ in range(self._index_bits)]
            for _ in range(n_banks)
        ]

    def bit_index(self, bank: int, line_addr: int) -> int:
        idx = 0
        for j, mask in enumerate(self._masks[bank]):
            if (line_addr & mask).bit_count() & 1:
                idx |= 1 << j
        return idx


class MultiplicativeHashFamily:
    """Per-bank Knuth multiplicative hashing (fast Python path)."""

    WORD = 64

    def __init__(self, n_banks: int, bank_bits: int, seed: int = 2010) -> None:
        if bank_bits & (bank_bits - 1):
            raise ValueError("bank_bits must be a power of two")
        self.n_banks = n_banks
        self.bank_bits = bank_bits
        self._shift = self.WORD - (bank_bits.bit_length() - 1)
        rng = DeterministicRng(seed, "mult-consts")
        # Odd 64-bit constants, one per bank, plus a per-bank xor whitener so
        # banks are independent even for small addresses.
        self._consts = [(rng.randbits(self.WORD) | 1) for _ in range(n_banks)]
        self._whiteners = [rng.randbits(self.WORD) for _ in range(n_banks)]
        self._mask64 = (1 << self.WORD) - 1

    def bit_index(self, bank: int, line_addr: int) -> int:
        x = (line_addr ^ self._whiteners[bank]) & self._mask64
        return ((x * self._consts[bank]) & self._mask64) >> self._shift


def make_hash_family(kind: str, n_banks: int, bank_bits: int, seed: int = 2010):
    """Factory: ``kind`` is ``"h3"`` or ``"mult"``."""
    if kind == "h3":
        return H3HashFamily(n_banks, bank_bits, seed)
    if kind == "mult":
        return MultiplicativeHashFamily(n_banks, bank_bits, seed)
    raise ValueError(f"unknown hash family {kind!r}")


__all__ = ["HashFamily", "H3HashFamily", "MultiplicativeHashFamily", "make_hash_family"]
