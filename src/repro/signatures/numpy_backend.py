"""Numpy packed-bitarray signature backend (``REPRO_SIG_BACKEND=numpy``).

Stores the same packed bank layout as the pure-python
:class:`~repro.signatures.bulk_signature.BulkSignature` — bank ``b`` at
bit slice ``[b * bank_bits, (b + 1) * bank_bits)`` — but in a little-endian
``uint64`` word array instead of one Python int.  Word-array OR/AND keeps
per-op cost flat as ``total_bits`` grows (a Python big-int op re-allocates
the full digit string), which is the regime the 256/1024-core scaling
studies need: wider signatures without the hot loop getting slower.

The two backends are bit-for-bit equivalent — ``packed_bits()`` is the
canonical integer view on both, and the property test in
``tests/test_signature_backends.py`` drives them in lockstep.  Backends
interoperate: any cross-backend binary op falls back to the integer view.

Numpy is an optional dependency at runtime: this module imports lazily
and :func:`require_numpy` turns a missing install into a clear error at
factory construction, not deep inside a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.signatures.bulk_signature import SignatureFactory

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the default env
    _np = None

#: bits per storage word.
WORD_BITS = 64


def numpy_available() -> bool:
    return _np is not None


def require_numpy(factory: "SignatureFactory") -> None:
    """Validate that ``factory`` can host the numpy backend.

    Raises with an actionable message instead of failing mid-run.  The
    bank-alignment requirement keeps every bank a contiguous word slice,
    which is what makes the per-bank intersection scan a slice ``any()``.
    """
    if _np is None:
        raise RuntimeError(
            "signature backend 'numpy' requested but numpy is not "
            "installed; use the 'python' backend")
    if factory.bank_bits % WORD_BITS:
        raise ValueError(
            "numpy signature backend needs bank_bits divisible by "
            f"{WORD_BITS} (got total_bits={factory.total_bits}, "
            f"n_banks={factory.n_banks} -> bank_bits={factory.bank_bits})")
    if not hasattr(factory, "_np_mask_cache"):
        factory._np_mask_cache = {}


class NumpyBulkSignature:
    """Word-array twin of ``BulkSignature`` (identical API + bit layout)."""

    __slots__ = ("_factory", "_words", "_count")

    def __init__(self, factory: "SignatureFactory") -> None:
        require_numpy(factory)
        self._factory = factory
        self._words = _np.zeros(factory.total_bits // WORD_BITS,
                                dtype=_np.uint64)
        self._count = 0

    # ------------------------------------------------------------------
    # packed-int <-> word-array bridging
    # ------------------------------------------------------------------
    def _np_mask(self, line_addr: int) -> "_np.ndarray":
        cache = self._factory._np_mask_cache
        mask = cache.get(line_addr)
        if mask is None:
            mask = _int_to_words(self._factory.packed_mask(line_addr),
                                 self._factory.total_bits)
            cache[line_addr] = mask
        return mask

    def _other_words(self, other: object) -> "_np.ndarray":
        """Word view of any compatible signature (either backend)."""
        if isinstance(other, NumpyBulkSignature):
            return other._words
        return _int_to_words(other.packed_bits(), self._factory.total_bits)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, line_addr: int) -> None:
        prof = self._factory.profiler
        if prof is None:
            self._words |= self._np_mask(line_addr)
            self._count += 1
            return
        prof.enter("sig.insert")
        try:
            self._words |= self._np_mask(line_addr)
            self._count += 1
        finally:
            prof.exit()

    def insert_many(self, lines: Iterable[int]) -> None:
        prof = self._factory.profiler
        if prof is None:
            self._insert_many(lines)
            return
        prof.enter("sig.insert")
        try:
            self._insert_many(lines)
        finally:
            prof.exit()

    def _insert_many(self, lines: Iterable[int]) -> None:
        np_mask = self._np_mask
        acc = _np.zeros_like(self._words)
        n = 0
        for line in lines:
            acc |= np_mask(line)
            n += 1
        self._words |= acc
        self._count += n

    def clear(self) -> None:
        self._words[:] = 0
        self._count = 0

    def union_update(self, other: object) -> None:
        self._check_compatible(other)
        self._words |= self._other_words(other)
        self._count += other.inserts

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        prof = self._factory.profiler
        if prof is None:
            mask = self._np_mask(line_addr)
            return bool(((self._words & mask) == mask).all())
        prof.enter("sig.member")
        try:
            mask = self._np_mask(line_addr)
            return bool(((self._words & mask) == mask).all())
        finally:
            prof.exit()

    def intersects(self, other: object) -> bool:
        prof = self._factory.profiler
        if prof is None:
            return self._intersects(other)
        prof.enter("sig.intersect")
        try:
            return self._intersects(other)
        finally:
            prof.exit()

    def _intersects(self, other: object) -> bool:
        self._check_compatible(other)
        both = self._words & self._other_words(other)
        wpb = self._factory.bank_bits // WORD_BITS
        for b in range(self._factory.n_banks):
            if not both[b * wpb:(b + 1) * wpb].any():
                return False
        return True

    def union(self, other: object) -> "NumpyBulkSignature":
        self._check_compatible(other)
        out = NumpyBulkSignature(self._factory)
        out._words = self._words | self._other_words(other)
        out._count = self._count + other.inserts
        return out

    def expand(self, candidates: Iterable[int]) -> List[int]:
        return [line for line in candidates if self.contains(line)]

    def is_empty(self) -> bool:
        return not self._words.any()

    def bit_count(self) -> int:
        return int(_np.unpackbits(self._words.view(_np.uint8)).sum())

    def false_positive_probability(self) -> float:
        prob = 1.0
        for bank in self.banks():
            prob *= bank.bit_count() / self._factory.bank_bits
        return prob

    @property
    def inserts(self) -> int:
        return self._count

    @property
    def factory(self) -> "SignatureFactory":
        return self._factory

    # ------------------------------------------------------------------
    def packed_bits(self) -> int:
        return int.from_bytes(self._words.tobytes(), "little")

    def copy(self) -> "NumpyBulkSignature":
        out = NumpyBulkSignature(self._factory)
        out._words = self._words.copy()
        out._count = self._count
        return out

    def banks(self) -> Iterator[int]:
        wpb = self._factory.bank_bits // WORD_BITS
        for b in range(self._factory.n_banks):
            chunk = self._words[b * wpb:(b + 1) * wpb]
            yield int.from_bytes(chunk.tobytes(), "little")

    def _check_compatible(self, other: object) -> None:
        of = other.factory
        if of is not self._factory and of.hash_params != self._factory.hash_params:
            raise ValueError(
                "signatures from incompatible factories: "
                f"{self._factory.hash_params} vs {of.hash_params}")

    def __eq__(self, other: object) -> bool:
        if not hasattr(other, "packed_bits"):
            return NotImplemented
        return self.packed_bits() == other.packed_bits()

    def __hash__(self) -> int:  # mutable; identity hashing
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"NumpyBulkSignature(bits={self.bit_count()}, "
                f"inserts={self._count})")


def _int_to_words(value: int, total_bits: int) -> "_np.ndarray":
    data = value.to_bytes(total_bits // 8, "little")
    return _np.frombuffer(data, dtype=_np.uint64).copy()


__all__ = ["NumpyBulkSignature", "WORD_BITS", "numpy_available",
           "require_numpy"]
