"""Banked Bloom signatures over cache-line addresses.

A signature is split into ``n_banks`` equal banks; inserting an address sets
exactly one bit in every bank.  Consequently:

* **membership**: an address is (possibly) present iff its bit is set in
  *every* bank — no false negatives, bounded false positives;
* **intersection**: two signatures (possibly) share an address iff the
  bitwise AND of every corresponding bank pair is non-zero.  If any bank
  pair ANDs to zero the sets are *definitely* disjoint.

These are exactly the tests a ScalableBulk directory performs on incoming
loads and incoming (R, W) pairs (paper Fig. 2), and the tests a processor
performs for chunk disambiguation on a received bulk invalidation.

Storage layout (the compiled-core speed push): all banks live in ONE
packed Python int — bank ``b`` occupies bit slice
``[b * bank_bits, (b + 1) * bank_bits)``.  A line's per-bank one-hot masks
fold into a single *packed mask*, so the hot operations collapse to one
big-int op each:

* ``insert``    — ``bits |= mask``
* ``contains``  — ``bits & mask == mask`` (its bit set in *every* bank)
* ``intersects``— one AND, then an n_banks-slice emptiness scan

The banked semantics are unchanged: per-bank views are recovered on
demand (``banks()``), and the bank-local ``line_masks`` API is kept for
diagnostics and tests.

An alternative numpy bit-array backend lives in
:mod:`repro.signatures.numpy_backend`; :class:`SignatureFactory` selects
the backend from its ``backend`` argument, the machine configuration, or
the ``REPRO_SIG_BACKEND`` environment variable.  Both backends are
bit-for-bit equivalent (property-tested in
``tests/test_signature_backends.py``).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.signatures.hashing import HashFamily, make_hash_family

#: Recognised signature storage backends.
BACKENDS = ("python", "numpy")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name: config > $REPRO_SIG_BACKEND > python.

    ``None`` and ``"auto"`` both mean "no explicit choice" and defer to
    the ``REPRO_SIG_BACKEND`` environment variable (then ``python``).
    """
    if backend is not None and backend.lower() == "auto":
        backend = None
    name = (backend or os.environ.get("REPRO_SIG_BACKEND") or "python").lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown signature backend {name!r}; expected one of {BACKENDS}")
    return name


class SignatureFactory:
    """Creates signatures that share one hash family (one per machine)."""

    def __init__(self, total_bits: int = 2048, n_banks: int = 4,
                 hash_kind: str = "mult", seed: int = 2010,
                 backend: Optional[str] = None) -> None:
        if total_bits % n_banks:
            raise ValueError("total_bits must divide into banks evenly")
        self.total_bits = total_bits
        self.n_banks = n_banks
        self.bank_bits = total_bits // n_banks
        self.hash_kind = hash_kind
        self.seed = seed
        self.hashes: HashFamily = make_hash_family(hash_kind, n_banks, self.bank_bits, seed)
        self.backend = resolve_backend(backend)
        #: Host-time self-profiler (repro.obs.profile).  Lives on the
        #: factory because BulkSignature has __slots__ and all of a
        #: machine's signatures share one factory; None = fast path.
        self.profiler: Optional[object] = None
        #: line address -> packed all-banks mask (one bit per bank, each in
        #: its bank's slice).  A workload touches each line many times
        #: (every chunk re-inserts its read/write sets), so hashing each
        #: line once and reusing the mask takes the hash out of the
        #: insert/contains hot path.  Bounded by the workload's
        #: distinct-line footprint.
        self._mask_cache: Dict[int, int] = {}
        #: line address -> bank-local one-hot masks (diagnostics API).
        self._bank_mask_cache: Dict[int, Tuple[int, ...]] = {}
        #: per-bank slice masks of the packed layout (intersection scan).
        bank_ones = (1 << self.bank_bits) - 1
        self.bank_slices: Tuple[int, ...] = tuple(
            bank_ones << (b * self.bank_bits) for b in range(n_banks))
        self._signature_cls = self._resolve_signature_cls()

    def _resolve_signature_cls(self) -> type:
        if self.backend == "numpy":
            from repro.signatures.numpy_backend import (
                NumpyBulkSignature, require_numpy)
            require_numpy(self)
            return NumpyBulkSignature
        return BulkSignature

    @property
    def hash_params(self) -> Tuple[int, int, str, int]:
        """Everything that determines where a line's bits land.

        Two factories with equal ``hash_params`` map every address to the
        same bit positions, so their signatures are safely comparable.
        The storage backend is deliberately excluded: backends are
        bit-for-bit equivalent views of the same encoded set.
        """
        return (self.total_bits, self.n_banks, self.hash_kind, self.seed)

    def packed_mask(self, line_addr: int) -> int:
        """All-banks packed mask for ``line_addr`` (memoized hot path)."""
        mask = self._mask_cache.get(line_addr)
        if mask is None:
            hashes = self.hashes
            bank_bits = self.bank_bits
            mask = 0
            for b in range(self.n_banks):
                mask |= 1 << (b * bank_bits + hashes.bit_index(b, line_addr))
            self._mask_cache[line_addr] = mask
        return mask

    def line_masks(self, line_addr: int) -> Tuple[int, ...]:
        """Per-bank one-hot bit masks for ``line_addr`` (memoized)."""
        masks = self._bank_mask_cache.get(line_addr)
        if masks is None:
            packed = self.packed_mask(line_addr)
            bank_bits = self.bank_bits
            bank_ones = (1 << bank_bits) - 1
            masks = tuple((packed >> (b * bank_bits)) & bank_ones
                          for b in range(self.n_banks))
            self._bank_mask_cache[line_addr] = masks
        return masks

    def empty(self) -> "BulkSignature":
        """A fresh, empty signature (backend chosen at factory build)."""
        return self._signature_cls(self)

    def from_lines(self, lines: Iterable[int]) -> "BulkSignature":
        """Fold a whole line set into a fresh signature in one pass."""
        sig = self._signature_cls(self)
        sig.insert_many(lines)
        return sig

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SignatureFactory(total_bits={self.total_bits}, "
                f"n_banks={self.n_banks}, backend={self.backend!r})")


class BulkSignature:
    """One chunk's R or W signature.

    All banks are stored in one packed Python int (bank ``b`` at bit slice
    ``b * bank_bits``).  Mutating operations are one big-int OR per
    address; membership is one AND + compare; intersection is one AND plus
    an O(banks) slice scan.
    """

    __slots__ = ("_factory", "_bits", "_count")

    def __init__(self, factory: SignatureFactory) -> None:
        self._factory = factory
        self._bits: int = 0
        self._count = 0  #: number of inserted addresses (not distinct)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, line_addr: int) -> None:
        """Add a line address to the encoded set."""
        prof = self._factory.profiler
        if prof is None:
            self._bits |= self._factory.packed_mask(line_addr)
            self._count += 1
            return
        prof.enter("sig.insert")
        try:
            self._bits |= self._factory.packed_mask(line_addr)
            self._count += 1
        finally:
            prof.exit()

    def insert_many(self, lines: Iterable[int]) -> None:
        """Fold a whole read/write set in one pass (one final OR)."""
        prof = self._factory.profiler
        if prof is None:
            packed_mask = self._factory.packed_mask
            bits = 0
            n = 0
            for line in lines:
                bits |= packed_mask(line)
                n += 1
            self._bits |= bits
            self._count += n
            return
        prof.enter("sig.insert")
        try:
            packed_mask = self._factory.packed_mask
            bits = 0
            n = 0
            for line in lines:
                bits |= packed_mask(line)
                n += 1
            self._bits |= bits
            self._count += n
        finally:
            prof.exit()

    def clear(self) -> None:
        """Deallocate: reset to the empty set."""
        self._bits = 0
        self._count = 0

    def union_update(self, other: "BulkSignature") -> None:
        """In-place union (used to fold R and W for disambiguation)."""
        self._check_compatible(other)
        self._bits |= other.packed_bits()
        self._count += other.inserts

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        """Possibly-present membership test (no false negatives)."""
        prof = self._factory.profiler
        if prof is None:
            mask = self._factory.packed_mask(line_addr)
            return self._bits & mask == mask
        prof.enter("sig.member")
        try:
            mask = self._factory.packed_mask(line_addr)
            return self._bits & mask == mask
        finally:
            prof.exit()

    def intersects(self, other: "BulkSignature") -> bool:
        """Possibly-overlapping test: True unless provably disjoint."""
        prof = self._factory.profiler
        if prof is None:
            self._check_compatible(other)
            both = self._bits & other.packed_bits()
            return all(both & s for s in self._factory.bank_slices)
        prof.enter("sig.intersect")
        try:
            self._check_compatible(other)
            both = self._bits & other.packed_bits()
            return all(both & s for s in self._factory.bank_slices)
        finally:
            prof.exit()

    def union(self, other: "BulkSignature") -> "BulkSignature":
        # A cross-hash-family union would interleave bits hashed with
        # different functions into one signature: downstream intersects()
        # could then miss real conflicts.  Same check as union_update.
        self._check_compatible(other)
        out = BulkSignature(self._factory)
        out._bits = self._bits | other.packed_bits()
        out._count = self._count + other.inserts
        return out

    def expand(self, candidates: Iterable[int]) -> List[int]:
        """Filter ``candidates`` to those possibly in the set.

        Models directory-side signature expansion: the directory checks the
        lines it tracks for membership (Section 3.1).
        """
        return [line for line in candidates if self.contains(line)]

    def is_empty(self) -> bool:
        return not self._bits

    def bit_count(self) -> int:
        """Total set bits across banks (density / aliasing diagnostics)."""
        return self._bits.bit_count()

    def false_positive_probability(self) -> float:
        """Analytic FP rate for a membership probe against this signature."""
        prob = 1.0
        for bank in self.banks():
            prob *= bank.bit_count() / self._factory.bank_bits
        return prob

    @property
    def inserts(self) -> int:
        return self._count

    @property
    def factory(self) -> SignatureFactory:
        return self._factory

    # ------------------------------------------------------------------
    def packed_bits(self) -> int:
        """The packed all-banks int (the canonical cross-backend view)."""
        return self._bits

    def copy(self) -> "BulkSignature":
        out = BulkSignature(self._factory)
        out._bits = self._bits
        out._count = self._count
        return out

    def banks(self) -> Iterator[int]:
        """Per-bank ints, bank 0 first (views of the packed storage)."""
        bits = self._bits
        bank_bits = self._factory.bank_bits
        bank_ones = (1 << bank_bits) - 1
        for b in range(self._factory.n_banks):
            yield (bits >> (b * bank_bits)) & bank_ones

    def _check_compatible(self, other: "BulkSignature") -> None:
        # Matching geometry is not enough: a different hash kind or seed
        # lands the same address on different bits, and intersects() would
        # then silently report "disjoint" for overlapping sets — a missed
        # conflict.  The full hash-family parameters must agree.
        if (other._factory is not self._factory
                and other._factory.hash_params != self._factory.hash_params):
            raise ValueError(
                "signatures from incompatible factories: "
                f"{self._factory.hash_params} vs {other._factory.hash_params}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BulkSignature):
            return NotImplemented
        return self.packed_bits() == other.packed_bits()

    def __hash__(self) -> int:  # signatures are mutable; identity hashing
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BulkSignature(bits={self.bit_count()}, inserts={self._count})"


def definitely_disjoint(a: BulkSignature, b: BulkSignature) -> bool:
    """Convenience negation of :meth:`BulkSignature.intersects`."""
    return not a.intersects(b)


def exact_conflict(read_set: Set[int], write_set: Set[int],
                   other_write_set: Set[int]) -> bool:
    """Ground-truth conflict test used by validators and tests.

    A chunk with (read_set, write_set) conflicts with a committing chunk
    whose write set is ``other_write_set`` iff Ri ∩ Wj or Wi ∩ Wj is
    non-empty (Section 3.4).
    """
    return bool(other_write_set & read_set) or bool(other_write_set & write_set)


__all__ = ["BACKENDS", "BulkSignature", "SignatureFactory",
           "definitely_disjoint", "exact_conflict", "resolve_backend"]
