"""Banked Bloom signatures over cache-line addresses.

A signature is split into ``n_banks`` equal banks; inserting an address sets
exactly one bit in every bank.  Consequently:

* **membership**: an address is (possibly) present iff its bit is set in
  *every* bank — no false negatives, bounded false positives;
* **intersection**: two signatures (possibly) share an address iff the
  bitwise AND of every corresponding bank pair is non-zero.  If any bank
  pair ANDs to zero the sets are *definitely* disjoint.

These are exactly the tests a ScalableBulk directory performs on incoming
loads and incoming (R, W) pairs (paper Fig. 2), and the tests a processor
performs for chunk disambiguation on a received bulk invalidation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.signatures.hashing import HashFamily, make_hash_family


class SignatureFactory:
    """Creates signatures that share one hash family (one per machine)."""

    def __init__(self, total_bits: int = 2048, n_banks: int = 4,
                 hash_kind: str = "mult", seed: int = 2010) -> None:
        if total_bits % n_banks:
            raise ValueError("total_bits must divide into banks evenly")
        self.total_bits = total_bits
        self.n_banks = n_banks
        self.bank_bits = total_bits // n_banks
        self.hash_kind = hash_kind
        self.seed = seed
        self.hashes: HashFamily = make_hash_family(hash_kind, n_banks, self.bank_bits, seed)
        #: Host-time self-profiler (repro.obs.profile).  Lives on the
        #: factory because BulkSignature has __slots__ and all of a
        #: machine's signatures share one factory; None = fast path.
        self.profiler: Optional[object] = None
        #: line address -> per-bank one-hot masks.  A workload touches each
        #: line many times (every chunk re-inserts its read/write sets), so
        #: hashing each line once and reusing the masks takes the hash out
        #: of the insert/contains hot path.  Bounded by the workload's
        #: distinct-line footprint.
        self._mask_cache: Dict[int, Tuple[int, ...]] = {}

    @property
    def hash_params(self) -> Tuple[int, int, str, int]:
        """Everything that determines where a line's bits land.

        Two factories with equal ``hash_params`` map every address to the
        same bit positions, so their signatures are safely comparable.
        """
        return (self.total_bits, self.n_banks, self.hash_kind, self.seed)

    def line_masks(self, line_addr: int) -> Tuple[int, ...]:
        """Per-bank one-hot bit masks for ``line_addr`` (memoized)."""
        masks = self._mask_cache.get(line_addr)
        if masks is None:
            hashes = self.hashes
            masks = tuple(1 << hashes.bit_index(b, line_addr)
                          for b in range(self.n_banks))
            self._mask_cache[line_addr] = masks
        return masks

    def empty(self) -> "BulkSignature":
        """A fresh, empty signature."""
        return BulkSignature(self)

    def from_lines(self, lines: Iterable[int]) -> "BulkSignature":
        sig = self.empty()
        for line in lines:
            sig.insert(line)
        return sig

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SignatureFactory(total_bits={self.total_bits}, "
                f"n_banks={self.n_banks})")


class BulkSignature:
    """One chunk's R or W signature.

    Bits are stored as one Python int per bank.  All mutating operations are
    O(1) per address; intersection tests are O(banks) big-int ANDs.
    """

    __slots__ = ("_factory", "_banks", "_count")

    def __init__(self, factory: SignatureFactory) -> None:
        self._factory = factory
        self._banks: List[int] = [0] * factory.n_banks
        self._count = 0  #: number of insert() calls (not distinct addresses)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, line_addr: int) -> None:
        """Add a line address to the encoded set."""
        prof = self._factory.profiler
        if prof is not None:
            prof.enter("sig.insert")
        banks = self._banks
        for b, mask in enumerate(self._factory.line_masks(line_addr)):
            banks[b] |= mask
        self._count += 1
        if prof is not None:
            prof.exit()

    def clear(self) -> None:
        """Deallocate: reset to the empty set."""
        self._banks = [0] * self._factory.n_banks
        self._count = 0

    def union_update(self, other: "BulkSignature") -> None:
        """In-place union (used to fold R and W for disambiguation)."""
        self._check_compatible(other)
        for b in range(self._factory.n_banks):
            self._banks[b] |= other._banks[b]
        self._count += other._count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        """Possibly-present membership test (no false negatives)."""
        prof = self._factory.profiler
        if prof is None:
            banks = self._banks
            return all(
                banks[b] & mask
                for b, mask in enumerate(self._factory.line_masks(line_addr))
            )
        prof.enter("sig.member")
        banks = self._banks
        hit = all(
            banks[b] & mask
            for b, mask in enumerate(self._factory.line_masks(line_addr))
        )
        prof.exit()
        return hit

    def intersects(self, other: "BulkSignature") -> bool:
        """Possibly-overlapping test: True unless provably disjoint."""
        prof = self._factory.profiler
        if prof is not None:
            prof.enter("sig.intersect")
        self._check_compatible(other)
        if self.is_empty() or other.is_empty():
            hit = False
        else:
            hit = all(
                self._banks[b] & other._banks[b]
                for b in range(self._factory.n_banks)
            )
        if prof is not None:
            prof.exit()
        return hit

    def union(self, other: "BulkSignature") -> "BulkSignature":
        out = BulkSignature(self._factory)
        out._banks = [a | b for a, b in zip(self._banks, other._banks)]
        out._count = self._count + other._count
        return out

    def expand(self, candidates: Iterable[int]) -> List[int]:
        """Filter ``candidates`` to those possibly in the set.

        Models directory-side signature expansion: the directory checks the
        lines it tracks for membership (Section 3.1).
        """
        return [line for line in candidates if self.contains(line)]

    def is_empty(self) -> bool:
        return not any(self._banks)

    def bit_count(self) -> int:
        """Total set bits across banks (density / aliasing diagnostics)."""
        return sum(b.bit_count() for b in self._banks)

    def false_positive_probability(self) -> float:
        """Analytic FP rate for a membership probe against this signature."""
        prob = 1.0
        for bank in self._banks:
            prob *= bank.bit_count() / self._factory.bank_bits
        return prob

    @property
    def inserts(self) -> int:
        return self._count

    @property
    def factory(self) -> SignatureFactory:
        return self._factory

    # ------------------------------------------------------------------
    def copy(self) -> "BulkSignature":
        out = BulkSignature(self._factory)
        out._banks = list(self._banks)
        out._count = self._count
        return out

    def banks(self) -> Iterator[int]:
        return iter(self._banks)

    def _check_compatible(self, other: "BulkSignature") -> None:
        # Matching geometry is not enough: a different hash kind or seed
        # lands the same address on different bits, and intersects() would
        # then silently report "disjoint" for overlapping sets — a missed
        # conflict.  The full hash-family parameters must agree.
        if (other._factory is not self._factory
                and other._factory.hash_params != self._factory.hash_params):
            raise ValueError(
                "signatures from incompatible factories: "
                f"{self._factory.hash_params} vs {other._factory.hash_params}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BulkSignature):
            return NotImplemented
        return self._banks == other._banks

    def __hash__(self) -> int:  # signatures are mutable; identity hashing
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BulkSignature(bits={self.bit_count()}, inserts={self._count})"


def definitely_disjoint(a: BulkSignature, b: BulkSignature) -> bool:
    """Convenience negation of :meth:`BulkSignature.intersects`."""
    return not a.intersects(b)


def exact_conflict(read_set: Set[int], write_set: Set[int],
                   other_write_set: Set[int]) -> bool:
    """Ground-truth conflict test used by validators and tests.

    A chunk with (read_set, write_set) conflicts with a committing chunk
    whose write set is ``other_write_set`` iff Ri ∩ Wj or Wi ∩ Wj is
    non-empty (Section 3.4).
    """
    return bool(other_write_set & read_set) or bool(other_write_set & write_set)


__all__ = ["BulkSignature", "SignatureFactory", "definitely_disjoint", "exact_conflict"]
