"""Bulk-style hardware address signatures.

Signatures are banked Bloom filters over cache-line addresses, as in
Bulk [Ceze et al., ISCA'06].  They support the operations the ScalableBulk
protocol needs at directory modules and processors:

* ``insert`` a line address (done as the chunk executes),
* ``contains`` membership test (load filtering at a directory, Fig. 2),
* ``intersects`` emptiness-of-intersection test between two signatures
  (chunk disambiguation and group-compatibility checks),
* ``expand`` against a candidate line set (directory-side W expansion).

False positives are inherent and harmless for correctness: at worst they
nack or squash unnecessarily (paper Section 3.1), which the simulator
reports as *aliasing squashes*.
"""

from repro.signatures.hashing import H3HashFamily, MultiplicativeHashFamily, make_hash_family
from repro.signatures.bulk_signature import BulkSignature, SignatureFactory

__all__ = [
    "BulkSignature",
    "SignatureFactory",
    "H3HashFamily",
    "MultiplicativeHashFamily",
    "make_hash_family",
]
