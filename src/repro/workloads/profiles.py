"""Per-application workload profiles (11 SPLASH-2 + 7 PARSEC).

Profile parameters are calibrated against the characteristics the paper
reports, not against the original binaries:

* Section 6.2 / Figs. 9-10: most applications touch 2-6 directories per
  chunk commit; Radix touches ~13 with nearly all of them recording
  writes (random bucket writes with no spatial locality); Barnes, Canneal
  and Blackscholes have large groups and long distribution tails.
* Section 6.1: Ocean, Cholesky and Raytrace get superlinear speedups
  because one L2 cannot hold their working set but 32-64 can.
* Squash rates are low (1.5% conflicts, 2.3% aliasing at 64p).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class AppProfile:
    """Statistical model of one application's memory behaviour."""

    name: str
    suite: str                          #: "splash2" or "parsec"

    # instruction mix
    mem_ratio: float = 0.30             #: memory accesses per instruction
    write_frac: float = 0.30            #: write fraction of private accesses
    #: distinct cache lines a chunk touches.  Repeated accesses to the same
    #: line are L1 hits that cost only pipeline cycles, so the generator
    #: emits one access per (roughly) distinct line and folds repeats into
    #: the instruction gaps.  2000-instruction chunks with realistic reuse
    #: land in the 40-100 range, which also keeps 2 Kbit signatures at the
    #: densities the paper's aliasing rates imply.
    lines_per_chunk: int = 64
    #: shared writes land in a per-partition slice of each shared page
    #: (data-parallel programs write disjoint elements; cross-thread
    #: conflicts come from reads of other partitions' slices and from the
    #: hot contended set)
    line_disjoint_writes: bool = True
    shared_locality_run: int = 4        #: consecutive-line run on shared pages
    #: probability a shared *read* landing on a written page stays within
    #: the reader's own slice.  Reads into other partitions' slices are the
    #: cross-thread communication that causes true R/W conflicts when they
    #: race a commit; the complement of this knob (plus the hot set) sets
    #: the conflict-squash rate (paper: ~1.5% of chunks at 64p).
    read_own_slice: float = 0.85

    # working sets (pages of 4 KB)
    private_pages_per_partition: int = 16
    shared_pages: int = 256

    # shared behaviour
    shared_frac: float = 0.20           #: fraction of accesses to shared data
    shared_pages_per_chunk: Tuple[int, int] = (1, 3)  #: distinct pages/chunk
    shared_page_write_frac: float = 0.4  #: fraction of those pages written
    shared_write_frac: float = 0.25     #: write fraction of shared accesses
    sharing_pattern: str = "uniform"    #: uniform | neighbor | bucket | readmostly
    zipf_skew: float = 0.6              #: popularity skew for uniform sharing

    # locality
    locality_run: int = 8               #: mean consecutive-line run length

    # conflicts
    hot_conflict_prob: float = 0.02     #: chunk touches the hot contended set
    hot_lines: int = 16

    def __post_init__(self) -> None:
        if self.suite not in ("splash2", "parsec"):
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.sharing_pattern not in ("uniform", "neighbor", "bucket",
                                        "readmostly"):
            raise ValueError(f"unknown pattern {self.sharing_pattern!r}")
        lo, hi = self.shared_pages_per_chunk
        if not 0 <= lo <= hi:
            raise ValueError("bad shared_pages_per_chunk range")


def _p(name: str, suite: str, **kw) -> AppProfile:
    return AppProfile(name=name, suite=suite, **kw)


#: The 11 SPLASH-2 applications of Figure 7 (LU and Ocean are the
#: contiguous versions, as in the paper).
SPLASH2_APPS = (
    "Radix", "Cholesky", "Barnes", "FFT", "Water-N", "FMM",
    "LU", "Ocean", "Water-S", "Radiosity", "Raytrace",
)

#: The 7 PARSEC applications of Figure 8.
PARSEC_APPS = (
    "Vips", "Swaptions", "Blackscholes", "Fluidanimate", "Canneal",
    "Dedup", "Facesim",
)


APP_PROFILES: Dict[str, AppProfile] = {
    # ----------------------------------------------------------------
    # SPLASH-2
    # ----------------------------------------------------------------
    # Radix sort scatters integers into per-digit buckets: writes land on
    # random shared pages with no spatial locality, so nearly every
    # directory in the group records writes (Section 6.1/6.2).
    "Radix": _p(
        "Radix", "splash2",
        shared_frac=0.45, sharing_pattern="bucket",
        shared_pages_per_chunk=(10, 14), shared_page_write_frac=0.95,
        shared_write_frac=0.75, locality_run=1, shared_pages=160,
        private_pages_per_partition=12, hot_conflict_prob=0.015,
        lines_per_chunk=72, shared_locality_run=1, read_own_slice=0.98,
    ),
    # Sparse Cholesky factorization: modest sharing, big working set
    # (superlinear at scale).
    "Cholesky": _p(
        "Cholesky", "splash2",
        shared_frac=0.15, shared_pages_per_chunk=(1, 3),
        shared_page_write_frac=0.35, private_pages_per_partition=48,
        locality_run=12, hot_conflict_prob=0.01,
    ),
    # Barnes-Hut N-body: tree walks touch many scattered shared pages.
    "Barnes": _p(
        "Barnes", "splash2",
        shared_frac=0.35, shared_pages_per_chunk=(4, 8),
        shared_page_write_frac=0.3, shared_write_frac=0.2,
        zipf_skew=0.9, locality_run=3, shared_pages=256,
        hot_conflict_prob=0.015, lines_per_chunk=80, shared_locality_run=2,
        read_own_slice=0.92,
    ),
    # FFT transpose: blocked all-to-all, high locality within blocks.
    "FFT": _p(
        "FFT", "splash2",
        shared_frac=0.25, sharing_pattern="neighbor",
        shared_pages_per_chunk=(2, 3), shared_page_write_frac=0.5,
        locality_run=16, private_pages_per_partition=24,
        hot_conflict_prob=0.005,
    ),
    # Water-Nsquared: all-pairs molecular dynamics, moderate sharing.
    "Water-N": _p(
        "Water-N", "splash2",
        shared_frac=0.30, shared_pages_per_chunk=(2, 5),
        shared_page_write_frac=0.35, locality_run=6,
        hot_conflict_prob=0.02,
    ),
    # FMM: adaptive fast multipole, scattered tree sharing.
    "FMM": _p(
        "FMM", "splash2",
        shared_frac=0.30, shared_pages_per_chunk=(3, 6),
        shared_page_write_frac=0.35, zipf_skew=0.8, locality_run=4,
        hot_conflict_prob=0.02,
    ),
    # LU (contiguous): blocked dense factorization, very high locality.
    "LU": _p(
        "LU", "splash2",
        shared_frac=0.12, sharing_pattern="neighbor",
        shared_pages_per_chunk=(1, 2), shared_page_write_frac=0.5,
        locality_run=20, private_pages_per_partition=20,
        hot_conflict_prob=0.004,
    ),
    # Ocean (contiguous): stencil grids, neighbour sharing, large grid
    # (superlinear).
    "Ocean": _p(
        "Ocean", "splash2",
        shared_frac=0.22, sharing_pattern="neighbor",
        shared_pages_per_chunk=(1, 3), shared_page_write_frac=0.5,
        locality_run=16, private_pages_per_partition=56,
        hot_conflict_prob=0.008,
    ),
    # Water-Spatial: cell-based MD, neighbour cells shared.
    "Water-S": _p(
        "Water-S", "splash2",
        shared_frac=0.22, sharing_pattern="neighbor",
        shared_pages_per_chunk=(1, 3), shared_page_write_frac=0.4,
        locality_run=8, hot_conflict_prob=0.01,
    ),
    # Radiosity: irregular task-stealing, scattered read-write sharing.
    "Radiosity": _p(
        "Radiosity", "splash2",
        shared_frac=0.30, shared_pages_per_chunk=(2, 5),
        shared_page_write_frac=0.3, zipf_skew=0.8, locality_run=4,
        hot_conflict_prob=0.025,
    ),
    # Raytrace: read-mostly shared scene, big footprint (superlinear).
    "Raytrace": _p(
        "Raytrace", "splash2",
        shared_frac=0.35, sharing_pattern="readmostly",
        shared_pages_per_chunk=(2, 5), shared_page_write_frac=0.08,
        shared_write_frac=0.05, private_pages_per_partition=44,
        locality_run=5, shared_pages=640, hot_conflict_prob=0.01,
    ),

    # ----------------------------------------------------------------
    # PARSEC
    # ----------------------------------------------------------------
    # Vips: image pipeline, mostly data-parallel with buffer handoff.
    "Vips": _p(
        "Vips", "parsec",
        shared_frac=0.22, shared_pages_per_chunk=(2, 4),
        shared_page_write_frac=0.4, locality_run=12,
        private_pages_per_partition=24, hot_conflict_prob=0.01,
    ),
    # Swaptions: embarrassingly parallel Monte-Carlo, tiny sharing.
    "Swaptions": _p(
        "Swaptions", "parsec",
        shared_frac=0.08, shared_pages_per_chunk=(1, 2),
        shared_page_write_frac=0.3, locality_run=10,
        private_pages_per_partition=12, hot_conflict_prob=0.003,
    ),
    # Blackscholes: data-parallel but the small option arrays interleave
    # across pages, spreading each chunk over many directories.
    "Blackscholes": _p(
        "Blackscholes", "parsec",
        shared_frac=0.40, shared_pages_per_chunk=(4, 8),
        shared_page_write_frac=0.45, shared_write_frac=0.35,
        locality_run=2, shared_pages=224, hot_conflict_prob=0.012,
        lines_per_chunk=80, shared_locality_run=2,
    ),
    # Fluidanimate: particle grid with neighbour-cell sharing and locks.
    "Fluidanimate": _p(
        "Fluidanimate", "parsec",
        shared_frac=0.28, sharing_pattern="neighbor",
        shared_pages_per_chunk=(2, 4), shared_page_write_frac=0.4,
        locality_run=6, hot_conflict_prob=0.03,
    ),
    # Canneal: random-access netlist swaps — scattered shared writes,
    # large groups, visible commit pressure (Section 6.1).
    "Canneal": _p(
        "Canneal", "parsec",
        shared_frac=0.45, shared_pages_per_chunk=(5, 9),
        shared_page_write_frac=0.5, shared_write_frac=0.4,
        locality_run=1, shared_pages=320, hot_conflict_prob=0.025,
        lines_per_chunk=84, shared_locality_run=1,
    ),
    # Dedup: pipeline with shared hash table.
    "Dedup": _p(
        "Dedup", "parsec",
        shared_frac=0.30, shared_pages_per_chunk=(2, 5),
        shared_page_write_frac=0.45, zipf_skew=0.9, locality_run=6,
        hot_conflict_prob=0.02,
    ),
    # Facesim: physics solver over a partitioned mesh.
    "Facesim": _p(
        "Facesim", "parsec",
        shared_frac=0.20, sharing_pattern="neighbor",
        shared_pages_per_chunk=(1, 3), shared_page_write_frac=0.4,
        locality_run=10, private_pages_per_partition=32,
        hot_conflict_prob=0.01,
    ),
}


def get_profile(name: str) -> AppProfile:
    """Look up an application profile by (case-insensitive) name."""
    for key, profile in APP_PROFILES.items():
        if key.lower() == name.lower():
            return profile
    raise KeyError(f"unknown application {name!r}; "
                   f"known: {sorted(APP_PROFILES)}")


__all__ = ["APP_PROFILES", "AppProfile", "PARSEC_APPS", "SPLASH2_APPS",
           "get_profile"]
