"""Deterministic synthetic trace generation from an AppProfile.

The total work of an application is fixed (strong scaling, as in the
paper's Figures 7/8): it consists of ``n_partitions`` partitions, each with
``chunks_per_partition`` chunks of ``chunk_instructions`` instructions.  A
run with P active cores assigns partition j to core ``j % P``; the
single-processor baseline therefore executes every partition on core 0,
touching the union of all working sets — which is what produces the
paper's superlinear speedups for large-footprint applications.

Chunk contents are generated from a RNG keyed by
(seed, app, partition, chunk index), so every protocol and every machine
size replays the identical access stream for the same piece of work.

Address-space layout (byte addresses):

* partition-private region: ``PRIVATE_BASE + partition * stride``
* shared region:            ``SHARED_BASE``
* hot contended lines:      ``HOT_BASE``
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import SystemConfig
from repro.cpu.chunk import ChunkAccess, ChunkSpec
from repro.engine.rng import DeterministicRng
from repro.workloads.profiles import AppProfile

PRIVATE_BASE = 1 << 22
SHARED_BASE = 1 << 28
HOT_BASE = 1 << 30


class SyntheticWorkload:
    """Generates and dispenses chunk specs for one application run."""

    def __init__(self, profile: AppProfile, config: SystemConfig,
                 active_cores: int, chunks_per_partition: int,
                 n_partitions: Optional[int] = None,
                 access_scale: float = 1.0, seed: Optional[int] = None) -> None:
        if active_cores < 1:
            raise ValueError("need at least one active core")
        self.profile = profile
        self.config = config
        self.active_cores = min(active_cores, config.n_cores)
        self.chunks_per_partition = chunks_per_partition
        #: reference machine size fixing the total work (default: the
        #: machine itself, so a 64-core run has one partition per core)
        self.n_partitions = n_partitions or config.n_cores
        self.access_scale = access_scale
        self.seed = config.seed if seed is None else seed
        self._root = DeterministicRng(self.seed, f"workload/{profile.name}")

        self.line_bytes = config.line_bytes
        self.page_bytes = config.page_bytes
        self.lines_per_page = config.lines_per_page

        # Per-core schedule: partition-major, chunks in order.
        self._schedule: Dict[int, List] = {c: [] for c in range(self.active_cores)}
        for part in range(self.n_partitions):
            core = part % self.active_cores
            for idx in range(self.chunks_per_partition):
                self._schedule[core].append((part, idx))
        self._cursor = {c: 0 for c in range(self.active_cores)}

    # ------------------------------------------------------------------
    # Page pre-mapping (the initialization phase's first touches)
    # ------------------------------------------------------------------
    def premap_pages(self, mapper) -> None:
        """Assign homes as the (unsimulated) init phase would have.

        Scattered sharing patterns (bucket/uniform/readmostly) end up
        page-interleaved across all directories — this is what produces
        the paper's multi-directory commit groups.  Neighbour patterns are
        homed at the partition that owns each slab (parallel init), and
        partition-private pages at their owner core.
        """
        p = self.profile
        n_dirs = mapper.n_directories
        shared_base = SHARED_BASE // self.page_bytes
        for i in range(p.shared_pages):
            if p.sharing_pattern == "neighbor":
                slab = max(1, p.shared_pages // max(1, self.n_partitions))
                owner_part = min(i // slab, self.n_partitions - 1)
                home = owner_part % self.active_cores
            else:
                home = i % n_dirs
            mapper.premap(shared_base + i, home)
        hot_page = HOT_BASE // self.page_bytes
        mapper.premap(hot_page, 0)
        private_base = PRIVATE_BASE // self.page_bytes
        stride = p.private_pages_per_partition + 8
        for part in range(self.n_partitions):
            owner = part % self.active_cores
            for j in range(p.private_pages_per_partition):
                mapper.premap(private_base + part * stride + j, owner)

    # ------------------------------------------------------------------
    # Cache prewarming (measurement starts after app warmup)
    # ------------------------------------------------------------------
    def prewarm_plan(self):
        """Yield (core_id, line_addr) fills for the steady-state caches.

        Each core gets the private working set of its partitions plus its
        own write slices of the shared region (bucket/uniform patterns) or
        its full slab (neighbour patterns).  Lines another core must read
        remotely remain cold, so communication misses — and the paper's
        RemoteShRd/RemoteDirtyRd traffic — still happen.  For the
        single-processor baseline, core 0 receives *every* partition's
        working set in sequence, so anything beyond one L2 naturally
        thrashes (the source of the paper's superlinear speedups).
        """
        for core, start, count in self.prewarm_runs():
            for line in range(start, start + count):
                yield core, line

    def prewarm_runs(self):
        """``prewarm_plan`` with consecutive lines coalesced into runs.

        Yields (core_id, start_line, count) triples; flattening each run
        back to per-line fills reproduces :meth:`prewarm_plan`'s sequence
        one-to-one (it is *defined* as this flattening).  The prewarm set
        is tens of thousands of lines laid out page-by-page, so the
        run-level view lets :meth:`Machine.prewarm
        <repro.harness.runner.Machine.prewarm>` amortize per-page work
        (home lookup, cache set walks) over whole runs.
        """
        p = self.profile
        lpp = self.lines_per_page
        private_base = PRIVATE_BASE // self.page_bytes
        shared_base = SHARED_BASE // self.page_bytes
        stride = p.private_pages_per_partition + 8
        slab = max(1, p.shared_pages // max(1, self.n_partitions))
        for part in range(self.n_partitions):
            core = part % self.active_cores
            for j in range(p.private_pages_per_partition):
                page = private_base + part * stride + j
                yield core, page * lpp, lpp
            if p.sharing_pattern == "neighbor":
                for j in range(slab):
                    page = shared_base + (part * slab + j) % p.shared_pages
                    yield core, page * lpp, lpp
            elif p.sharing_pattern in ("bucket", "uniform"):
                for j in range(p.shared_pages):
                    page = shared_base + j
                    start, per = self._slice_bounds(page, part)
                    if per:
                        yield core, start, per
        if p.sharing_pattern != "neighbor":
            # In steady state every shared page is resident in *some* cache
            # (page-interleaved across the active cores), so shared reads
            # are remote cache-to-cache transfers, not memory fetches.
            for j in range(p.shared_pages):
                page = shared_base + j
                yield j % self.active_cores, page * lpp, lpp
        hot_page = HOT_BASE // self.page_bytes
        yield 0, hot_page * lpp, lpp

    # ------------------------------------------------------------------
    # Dispensing (the Core's next_spec callback)
    # ------------------------------------------------------------------
    def next_spec(self, core_id: int) -> Optional[ChunkSpec]:
        sched = self._schedule.get(core_id)
        if not sched:
            return None
        i = self._cursor[core_id]
        if i >= len(sched):
            return None
        self._cursor[core_id] = i + 1
        part, idx = sched[i]
        return self.generate_chunk(part, idx)

    @property
    def total_chunks(self) -> int:
        return self.n_partitions * self.chunks_per_partition

    def remaining(self, core_id: int) -> int:
        sched = self._schedule.get(core_id, [])
        return len(sched) - self._cursor.get(core_id, 0)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_chunk(self, partition: int, chunk_idx: int) -> ChunkSpec:
        """Deterministically build the (partition, chunk_idx) chunk.

        One generated access stands for (roughly) one *distinct* cache
        line; the reuse accesses a real program would issue are L1 hits
        folded into the instruction gaps, so they cost pipeline cycles but
        need no simulation events.
        """
        p = self.profile
        rng = self._root.split(f"{partition}/{chunk_idx}")
        n_instr = self.config.chunk_size_instructions
        n_acc = max(4, int(p.lines_per_chunk * self.access_scale))
        n_acc = min(n_acc, n_instr)

        shared_pages = self._chunk_shared_pages(rng, partition)
        written_pages = self._written_subset(rng, shared_pages)
        private_pages = self._chunk_private_pages(rng, partition, chunk_idx)
        include_hot = rng.bernoulli(p.hot_conflict_prob)

        # Interleave shared runs into the private stream.
        n_shared = round(n_acc * p.shared_frac) if shared_pages else 0
        shared_slots = set(rng.sample(range(n_acc), min(n_shared, n_acc)))

        base_gap = max(0, (n_instr - n_acc) // n_acc)
        slack = n_instr - n_acc * (base_gap + 1)

        accesses: List[ChunkAccess] = []
        priv_cursor = None   # private spatial-run position (line address)
        priv_left = 0
        sh_cursor = None     # shared run position
        sh_left = 0
        sh_write = False
        for i in range(n_acc):
            gap = base_gap
            if slack > 0:
                gap += 1
                slack -= 1
            if include_hot and i == n_acc // 2:
                line = self._hot_line(rng)
                accesses.append(ChunkAccess(gap, line * self.line_bytes,
                                            rng.bernoulli(0.5)))
                continue
            if i in shared_slots:
                if sh_cursor is None or sh_left <= 0:
                    page = shared_pages[rng.zipf_index(len(shared_pages), 0.3)]
                    page_written = page in written_pages
                    if page_written and p.sharing_pattern == "bucket":
                        # Bucket (scatter) pages are write-only targets.
                        sh_write = True
                    else:
                        sh_write = (page_written and
                                    rng.bernoulli(self._page_write_prob(page)))
                    sh_cursor = self._shared_start_line(
                        rng, page, partition, sh_write,
                        page_written=page_written)
                    sh_left = max(1, rng.geometric(
                        1.0 / max(1, p.shared_locality_run)))
                else:
                    sh_cursor = self._advance_in_slice(sh_cursor, partition,
                                                       sh_write)
                sh_left -= 1
                accesses.append(ChunkAccess(gap, sh_cursor * self.line_bytes,
                                            sh_write))
            else:
                if priv_cursor is None or priv_left <= 0:
                    page = private_pages[rng.zipf_index(len(private_pages), 0.2)]
                    priv_cursor = self._line_in_page(rng, page)
                    priv_left = max(1, rng.geometric(
                        1.0 / max(1, p.locality_run)))
                else:
                    priv_cursor += 1
                    if priv_cursor % self.lines_per_page == 0:
                        priv_cursor -= self.lines_per_page  # stay on the page
                priv_left -= 1
                accesses.append(ChunkAccess(gap, priv_cursor * self.line_bytes,
                                            rng.bernoulli(p.write_frac)))
        return ChunkSpec(n_instructions=n_instr, accesses=accesses)

    # ------------------------------------------------------------------
    # Shared-region slicing (disjoint writes)
    # ------------------------------------------------------------------
    def _slice_bounds(self, page: int, partition: int):
        """The partition-owned line slice of a shared page."""
        per = max(1, self.lines_per_page // max(1, self.n_partitions))
        start = page * self.lines_per_page + (partition * per) % self.lines_per_page
        return start, per

    def _shared_start_line(self, rng: DeterministicRng, page: int,
                           partition: int, is_write: bool,
                           page_written: bool = False) -> int:
        own_slice = False
        if self.profile.line_disjoint_writes:
            if is_write:
                own_slice = True
            elif page_written or self.profile.sharing_pattern in ("bucket",
                                                                  "uniform"):
                # A read of a page that concurrent chunks may be writing:
                # usually the reader's own data, occasionally another
                # partition's slice (true cross-thread communication).
                own_slice = rng.bernoulli(self.profile.read_own_slice)
        if own_slice:
            start, per = self._slice_bounds(page, partition)
            return start + rng.randint(0, per - 1)
        return self._line_in_page(rng, page)

    def _advance_in_slice(self, cursor: int, partition: int,
                          is_write: bool) -> int:
        nxt = cursor + 1
        if is_write and self.profile.line_disjoint_writes:
            page = cursor // self.lines_per_page
            start, per = self._slice_bounds(page, partition)
            if nxt >= start + per or nxt >= (page + 1) * self.lines_per_page:
                return start
            return nxt
        if nxt % self.lines_per_page == 0:
            return nxt - self.lines_per_page
        return nxt

    # ------------------------------------------------------------------
    # Region helpers
    # ------------------------------------------------------------------
    def _chunk_shared_pages(self, rng: DeterministicRng, partition: int
                            ) -> List[int]:
        p = self.profile
        lo, hi = p.shared_pages_per_chunk
        k = rng.randint(lo, hi)
        if k == 0:
            return []
        base_page = SHARED_BASE // self.page_bytes
        pages: List[int] = []
        if p.sharing_pattern == "neighbor":
            # Partition j works on a contiguous slab of the shared array and
            # exchanges boundary pages with its neighbours every sweep.
            slab = max(1, p.shared_pages // max(1, self.n_partitions))
            start = partition * slab
            pages.append(base_page + (start + rng.randint(0, slab - 1))
                         % p.shared_pages)
            for i in range(1, k):
                # boundary pages: the tail of the previous slab or the head
                # of the next one (homed at the neighbouring tile)
                off = start - 1 if i % 2 else start + slab
                pages.append(base_page + off % p.shared_pages)
        elif p.sharing_pattern in ("bucket", "uniform", "readmostly"):
            skew = 0.0 if p.sharing_pattern == "bucket" else p.zipf_skew
            for _ in range(k):
                pages.append(base_page + rng.zipf_index(p.shared_pages, skew))
        return sorted(set(pages))

    def _written_subset(self, rng: DeterministicRng, pages: List[int]) -> set:
        frac = self.profile.shared_page_write_frac
        return {pg for pg in pages if rng.bernoulli(frac)}

    def _page_write_prob(self, page: int) -> float:
        """Write probability for an access landing on a written page."""
        # Calibrated so that written pages actually carry writes while the
        # overall shared write fraction stays near the profile's value.
        return max(self.profile.shared_write_frac, 0.5)

    def _chunk_private_pages(self, rng: DeterministicRng, partition: int,
                             chunk_idx: int) -> List[int]:
        p = self.profile
        base = (PRIVATE_BASE // self.page_bytes
                + partition * (p.private_pages_per_partition + 8))
        # The chunk walks a window of the partition's working set that
        # advances one page per chunk, so consecutive chunks of the same
        # partition reuse two thirds of their window (temporal locality a
        # real blocked loop nest exhibits at any thread count).
        window = 3
        start = chunk_idx % max(1, p.private_pages_per_partition)
        return [base + (start + j) % p.private_pages_per_partition
                for j in range(min(window, p.private_pages_per_partition))]

    def _line_in_page(self, rng: DeterministicRng, page: int) -> int:
        return page * self.lines_per_page + rng.randint(
            0, self.lines_per_page - 1)

    def _hot_line(self, rng: DeterministicRng) -> int:
        base_line = HOT_BASE // self.line_bytes
        return base_line + rng.randint(0, self.profile.hot_lines - 1)


__all__ = ["HOT_BASE", "PRIVATE_BASE", "SHARED_BASE", "SyntheticWorkload"]
