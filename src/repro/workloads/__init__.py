"""Synthetic workload models for the 11 SPLASH-2 and 7 PARSEC applications.

The paper drives its simulator with real application binaries; we cannot,
so each application is modelled by an :class:`AppProfile` that captures the
properties the evaluation actually depends on:

* memory intensity and write fraction,
* per-thread (partition) private working-set size — which produces the
  paper's superlinear speedups for Ocean/Cholesky/Raytrace, whose combined
  working set thrashes a single L2 but fits in 32-64 of them,
* how many *distinct shared pages* a chunk touches and how many of those
  are written — which determines the number of directory modules per chunk
  commit (Figs. 9-12; e.g. Radix's random bucket writes hit ~a dozen
  write-group directories),
* the sharing pattern (uniform, nearest-neighbour, random buckets,
  read-mostly) and a hot-line conflict probability that reproduces the
  paper's ~1.5% true-conflict squash rate.

Traces are generated deterministically from (seed, app, partition, chunk),
so every protocol sees the identical instruction stream.
"""

from repro.workloads.profiles import (
    APP_PROFILES,
    PARSEC_APPS,
    SPLASH2_APPS,
    AppProfile,
    get_profile,
)
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.tracefile import TraceFileWorkload, TraceFormatError

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "PARSEC_APPS",
    "SPLASH2_APPS",
    "SyntheticWorkload",
    "TraceFileWorkload",
    "TraceFormatError",
    "get_profile",
]
