"""Deterministic fault injection + chaos campaigns (``python -m repro chaos``).

Layers (see docs/robustness.md):

* :mod:`repro.faults.plan` — serializable, seeded :class:`FaultPlan`;
* :mod:`repro.faults.injectors` — realize a plan against a machine;
* :mod:`repro.faults.watchdog` — read-only liveness watchdog;
* :mod:`repro.faults.campaign` — campaign generation, verdicts,
  ddmin shrinking, replayable artifacts, the mutation check;
* :mod:`repro.faults.cli` — the ``chaos`` subcommand.
"""

from repro.faults.injectors import FaultEngine, apply_plan
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec, PLAN_VERSION
from repro.faults.watchdog import (DEFAULT_MAX_FIRES, DEFAULT_WINDOW,
                                   LivenessWatchdog, WatchdogFire,
                                   attach_watchdog, machine_snapshot)

__all__ = [
    "DEFAULT_MAX_FIRES", "DEFAULT_WINDOW", "FAULT_KINDS", "FaultEngine",
    "FaultPlan", "FaultSpec", "LivenessWatchdog", "PLAN_VERSION",
    "WatchdogFire", "apply_plan", "attach_watchdog", "machine_snapshot",
]
