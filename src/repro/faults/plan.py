"""Serializable fault plans: what to break, where, and when.

A :class:`FaultPlan` is a pure value — a seed plus an ordered list of
:class:`FaultSpec` entries — with a JSON form that is a *fixed point*
under serialize → deserialize → serialize (property-tested).  Plans are
the unit the chaos campaign generates, fans out to worker processes,
shrinks with ddmin, and writes into replayable failure artifacts, so
everything about them must survive a round trip unchanged.

Every fault is **timing-level**: it may delay messages, stall directory
service, force extra (legal) group failures or defer commit requests, but
it may never corrupt state or drop a message.  Safety must therefore hold
under any plan; the campaign gates that through the explore invariant
monitor (oracle, conformance, accounting).

The five injector kinds (realized in :mod:`repro.faults.injectors`):

===============  ======================================================
kind             parameters
===============  ======================================================
latency-spike    ``start, duration, extra, jitter`` — every message sent
                 in the window is delayed ``extra + U[0, jitter]`` cycles
link-hotspot     ``tile, start, duration, extra`` — messages touching the
                 tile (src or dst) are delayed while the window is open
dir-stall        ``dir, start, duration, extra`` — messages *to* one
                 directory module are delayed (a slow / busy module)
squash-storm     ``start, duration, prob`` — a ready, unheld group is
                 failed (a legal genuine collision) with probability
                 ``prob`` instead of being admitted; the module's
                 reserved chunk is always spared (ScalableBulk only)
core-jitter      ``core, start, duration, max_extra`` — the core's commit
                 requests are deferred ``U[1, max_extra]`` cycles
===============  ======================================================

All randomness inside injectors comes from named substreams of
:class:`repro.engine.rng.DeterministicRng` derived from ``plan.seed``
alone, so two runs of the same plan — in-process or across ``--jobs``
worker processes — take identical decisions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

PLAN_VERSION = 1

#: injector kind -> required parameter names
FAULT_KINDS: Dict[str, Tuple[str, ...]] = {
    "latency-spike": ("start", "duration", "extra", "jitter"),
    "link-hotspot": ("tile", "start", "duration", "extra"),
    "dir-stall": ("dir", "start", "duration", "extra"),
    "squash-storm": ("start", "duration", "prob"),
    "core-jitter": ("core", "start", "duration", "max_extra"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: a kind plus its (validated) parameters."""

    kind: str
    params: Tuple[Tuple[str, Any], ...]  #: sorted (name, value) pairs

    @classmethod
    def make(cls, kind: str, **params: Any) -> "FaultSpec":
        required = FAULT_KINDS.get(kind)
        if required is None:
            raise ValueError(
                f"unknown fault kind {kind!r} "
                f"(choices: {', '.join(sorted(FAULT_KINDS))})")
        missing = set(required) - set(params)
        extra = set(params) - set(required)
        if missing or extra:
            raise ValueError(
                f"{kind}: missing params {sorted(missing)}, "
                f"unexpected {sorted(extra)}")
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def __getitem__(self, name: str) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls.make(str(data["kind"]), **dict(data["params"]))


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, ordered composition of faults."""

    name: str
    seed: int
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def empty(cls, name: str = "empty", seed: int = 0) -> "FaultPlan":
        return cls(name=name, seed=seed)

    def with_faults(self, faults: List[FaultSpec]) -> "FaultPlan":
        """Same identity, different fault list (what ddmin shrinks)."""
        return FaultPlan(name=self.name, seed=self.seed,
                         faults=tuple(faults))

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": PLAN_VERSION,
            "name": self.name,
            "seed": self.seed,
            "faults": [f.to_json() for f in self.faults],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FaultPlan":
        version = data.get("version")
        if version != PLAN_VERSION:
            raise ValueError(
                f"fault plan has version {version!r}; this build reads "
                f"version {PLAN_VERSION}")
        return cls(
            name=str(data["name"]),
            seed=int(data["seed"]),
            faults=tuple(FaultSpec.from_json(f)
                         for f in data.get("faults", ())),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_json(json.loads(text))


__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec", "PLAN_VERSION"]
