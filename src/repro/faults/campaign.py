"""Chaos campaigns: seeded fault plans, verdicts, shrinking, artifacts.

One *campaign* is ``--plans N`` generated :class:`FaultPlan`\\ s, rotated
over a scenario set covering all four protocols, each executed on a fresh
machine with the plan's injectors, the liveness watchdog and the full
explore invariant monitor (oracle SB402, conformance SB405, co-held /
doomed SB401, accounting SB406, deadlock SB403, livelock SB404) attached.
Faults are timing-level, so **every** plan must come back clean: a single
safety or liveness code is a finding, and the failing plan is shrunk with
the explore ddmin to a minimal fault list and written into a replayable
JSON artifact (``--artifacts DIR``).

Workers are plain top-level functions over JSON payloads, so campaigns
fan out over ``harness.parallel.run_ordered`` (``--jobs N``) with
verdicts — and exit codes — identical to a serial run.

The *mutation check* is the campaign's teeth test: every registered
explore mutation runs once under nominal timing and under a storm-heavy
stress plan.  Its pass criterion is the chaos-only contract — bugs like
``reservation-leak`` that nominal timing cannot reach (the reservation
machinery never engages in a clean micro-run) must be caught under
chaos, and must demonstrably stay invisible without it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.explore.invariants import ExploreViolation, InvariantMonitor
from repro.analysis.explore.minimize import ddmin
from repro.analysis.explore.mutations import MUTATIONS, Mutation
from repro.analysis.explore.scenarios import SCENARIOS, Scenario, build_machine
from repro.config import ProtocolKind
from repro.engine.rng import DeterministicRng
from repro.faults.injectors import FaultEngine
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.watchdog import (DEFAULT_MAX_FIRES, DEFAULT_WINDOW,
                                   LivenessWatchdog)
from repro.obs.bus import InstrumentationBus, attach_bus

ARTIFACT_VERSION = 1

#: invariant codes that mean "serializability / protocol soundness broke"
SAFETY_CODES = frozenset({"SB401", "SB402", "SB405", "SB406"})
#: invariant codes that mean "the machine stopped making progress"
LIVENESS_CODES = frozenset({"SB403", "SB404"})

#: the default campaign rotation: every protocol, both access patterns
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "cross3", "mixed3", "nack3", "mixed4", "tcc3", "bulksc3", "seq3",
)


@dataclass
class ChaosResult:
    """Everything one (scenario, plan) chaos run produced."""

    scenario: Scenario
    plan: FaultPlan
    violations: List[ExploreViolation] = field(default_factory=list)
    watchdog_fires: List[Dict[str, Any]] = field(default_factory=list)
    activations: List[int] = field(default_factory=list)
    cycles: int = 0
    commits: int = 0
    mutation: Optional[str] = None

    @property
    def codes(self) -> List[str]:
        seen: List[str] = []
        for v in self.violations:
            if v.code not in seen:
                seen.append(v.code)
        return seen

    @property
    def safety_codes(self) -> List[str]:
        return [c for c in self.codes if c in SAFETY_CODES]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.watchdog_fires


def run_plan(scenario: Scenario, plan: FaultPlan, *,
             mutation: Optional[Mutation] = None,
             watchdog_window: int = DEFAULT_WINDOW,
             watchdog_max_fires: int = DEFAULT_MAX_FIRES,
             max_events: Optional[int] = None,
             bus: Optional[InstrumentationBus] = None) -> ChaosResult:
    """Build, injure, watch, run — one chaos execution.

    Wrapping order matters: the fault engine patches the machine first so
    the invariant monitor (attached second) observes the *injured*
    protocol exactly as it observes a nominal one.
    """
    machine = build_machine(scenario)
    if mutation is not None:
        mutation.apply(machine)
    engine = FaultEngine(plan, machine).install()
    if bus is not None:
        attach_bus(machine, bus)
    monitor = InvariantMonitor(machine,
                               expected_per_core=scenario.chunks_per_core)
    watchdog = LivenessWatchdog(machine, window=watchdog_window,
                                max_fires=watchdog_max_fires,
                                bus=bus).attach()
    try:
        machine.run(max_events=max_events or scenario.max_events,
                    prewarm=False)
    except RuntimeError as err:
        monitor.note_abnormal_end(str(err))
    else:
        monitor.finalize()
    return ChaosResult(
        scenario=scenario,
        plan=plan,
        violations=list(monitor.violations),
        watchdog_fires=[f.to_json() for f in watchdog.fires],
        activations=list(engine.activations),
        cycles=int(machine.sim.now),
        commits=sum(int(c.stats.chunks_committed) for c in machine.cores),
        mutation=mutation.name if mutation is not None else None,
    )


# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------
def generate_plan(rng: DeterministicRng, name: str,
                  scenario: Scenario) -> FaultPlan:
    """Draw one random plan sized for ``scenario`` from ``rng``."""
    kinds = sorted(FAULT_KINDS)
    if scenario.protocol is not ProtocolKind.SCALABLEBULK:
        kinds.remove("squash-storm")  # a no-op on baseline machines
    seed = rng.randint(0, 2**31 - 1)
    faults: List[FaultSpec] = []
    for _ in range(rng.randint(1, 4)):
        faults.append(_draw_fault(rng, rng.choice(kinds), scenario))
    return FaultPlan(name=name, seed=seed, faults=tuple(faults))


def _draw_fault(rng: DeterministicRng, kind: str,
                scenario: Scenario) -> FaultSpec:
    start = rng.randint(0, 2_000)
    duration = rng.randint(500, 6_000)
    if kind == "latency-spike":
        return FaultSpec.make(kind, start=start, duration=duration,
                              extra=rng.randint(5, 40),
                              jitter=rng.randint(0, 20))
    if kind == "link-hotspot":
        return FaultSpec.make(kind, start=start, duration=duration,
                              tile=rng.randint(0, scenario.n_cores - 1),
                              extra=rng.randint(10, 60))
    if kind == "dir-stall":
        return FaultSpec.make(kind, start=start, duration=duration,
                              dir=rng.randint(0, scenario.n_cores - 1),
                              extra=rng.randint(10, 60))
    if kind == "squash-storm":
        return FaultSpec.make(kind, start=start, duration=duration,
                              prob=rng.randint(30, 80) / 100)
    if kind == "core-jitter":
        return FaultSpec.make(kind, start=start, duration=duration,
                              core=rng.randint(0, scenario.n_cores - 1),
                              max_extra=rng.randint(5, 50))
    raise ValueError(f"unknown fault kind {kind!r}")


def generate_campaign(seed: int, n_plans: int,
                      scenario_names: Sequence[str] = DEFAULT_SCENARIOS
                      ) -> List[Tuple[str, FaultPlan]]:
    """The campaign's (scenario name, plan) list, fully seed-determined."""
    root = DeterministicRng(seed, "chaos")
    out: List[Tuple[str, FaultPlan]] = []
    for i in range(n_plans):
        scenario_name = scenario_names[i % len(scenario_names)]
        rng = root.split(f"plan{i:04d}")
        out.append((scenario_name,
                    generate_plan(rng, f"plan-{i:04d}",
                                  SCENARIOS[scenario_name])))
    return out


def stress_plan(seed: int, *, name: str = "stress") -> FaultPlan:
    """The mutation check's storm-heavy plan: a long, aggressive squash
    storm (drives one chunk past the starvation threshold so the
    reservation machinery engages) plus background latency noise."""
    return FaultPlan(name=name, seed=seed, faults=(
        FaultSpec.make("squash-storm", start=0, duration=20_000, prob=0.85),
        FaultSpec.make("latency-spike", start=0, duration=20_000,
                       extra=3, jitter=8),
    ))


# ----------------------------------------------------------------------
# Shrinking + artifacts
# ----------------------------------------------------------------------
def shrink_plan(scenario: Scenario, plan: FaultPlan, target_code: str, *,
                mutation: Optional[Mutation] = None,
                max_runs: int = 32) -> FaultPlan:
    """ddmin the plan's fault list while ``target_code`` still fires."""
    runs = 0

    def reproduces(faults: List[FaultSpec]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        result = run_plan(scenario, plan.with_faults(faults),
                          mutation=mutation)
        return target_code in result.codes

    return plan.with_faults(ddmin(list(plan.faults), reproduces))


def artifact_json(result: ChaosResult) -> Dict[str, Any]:
    """Self-contained, replayable record of one failing chaos run."""
    return {
        "version": ARTIFACT_VERSION,
        "scenario": result.scenario.to_json(),
        "plan": result.plan.to_json(),
        "mutation": result.mutation,
        "violations": [v.to_json() for v in result.violations],
        "watchdog_fires": list(result.watchdog_fires),
        "stats": {"cycles": result.cycles, "commits": result.commits,
                  "activations": list(result.activations)},
    }


def save_artifact(result: ChaosResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact_json(result), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    version = data.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"artifact {path} has version {version!r}; this build reads "
            f"version {ARTIFACT_VERSION}")
    return data


def replay_artifact(data: Dict[str, Any], *,
                    bus: Optional[InstrumentationBus] = None) -> ChaosResult:
    """Re-run a loaded artifact's plan on its scenario (and mutation)."""
    scenario = Scenario.from_json(data["scenario"])
    plan = FaultPlan.from_json(data["plan"])
    mutation_name = data.get("mutation")
    mutation = None
    if mutation_name is not None:
        mutation = MUTATIONS.get(str(mutation_name))
        if mutation is None:
            raise ValueError(
                f"artifact names unknown mutation {mutation_name!r}")
    return run_plan(scenario, plan, mutation=mutation, bus=bus)


# ----------------------------------------------------------------------
# Pool workers (top-level, plain-data payloads)
# ----------------------------------------------------------------------
def chaos_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One campaign plan -> plain verdict dict (plus artifact on failure).

    ``payload["mutation"]`` (optional) names an explore mutation to apply
    first — the campaign CLI never sets it, but tests use it to drive the
    failure/shrink path deterministically.
    """
    scenario = SCENARIOS[payload["scenario"]]
    plan = FaultPlan.from_json(payload["plan"])
    mutation = (MUTATIONS[payload["mutation"]]
                if payload.get("mutation") else None)
    result = run_plan(
        scenario, plan, mutation=mutation,
        watchdog_window=payload.get("watchdog", DEFAULT_WINDOW),
        max_events=payload.get("max_events"))
    out: Dict[str, Any] = {
        "scenario": scenario.name,
        "plan_name": plan.name,
        "n_faults": len(plan.faults),
        "codes": result.codes,
        "safety_codes": result.safety_codes,
        "watchdog_fires": len(result.watchdog_fires),
        "cycles": result.cycles,
        "commits": result.commits,
        "ok": result.ok,
    }
    if result.violations:
        target = result.codes[0]
        shrunk_plan = plan
        if payload.get("minimize", True):
            shrunk_plan = shrink_plan(scenario, plan, target,
                                      mutation=mutation)
        final = run_plan(scenario, shrunk_plan, mutation=mutation,
                         watchdog_window=payload.get("watchdog",
                                                     DEFAULT_WINDOW),
                         max_events=payload.get("max_events"))
        # Shrinking must preserve the finding; fall back to the original.
        if target not in final.codes:
            final = result
        out["artifact"] = artifact_json(final)
    return out


def mutation_check_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one mutation nominally and under the stress plan."""
    mutation = MUTATIONS[payload["mutation"]]
    scenario = SCENARIOS[mutation.scenario]
    expected = set(mutation.expected.split("/"))
    seed = int(payload.get("seed", 0))

    nominal = run_plan(scenario, FaultPlan.empty(seed=seed),
                       mutation=mutation)
    chaos = run_plan(scenario, stress_plan(seed), mutation=mutation)
    return {
        "mutation": mutation.name,
        "scenario": mutation.scenario,
        "chaos_only": mutation.chaos_only,
        "expected": mutation.expected,
        "nominal_codes": nominal.codes,
        "chaos_codes": chaos.codes,
        "nominal_caught": bool(expected & set(nominal.codes)),
        "chaos_caught": bool(expected & set(chaos.codes)),
        "chaos_watchdog_fires": len(chaos.watchdog_fires),
    }


__all__ = [
    "ARTIFACT_VERSION", "ChaosResult", "DEFAULT_SCENARIOS", "LIVENESS_CODES",
    "SAFETY_CODES", "artifact_json", "chaos_worker", "generate_campaign",
    "generate_plan", "load_artifact", "mutation_check_worker",
    "replay_artifact", "run_plan", "save_artifact", "shrink_plan",
    "stress_plan",
]
