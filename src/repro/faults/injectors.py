"""Realize a :class:`FaultPlan` against a freshly built machine.

:class:`FaultEngine` turns the plan's specs into live hooks:

* the three network faults (``latency-spike``, ``link-hotspot``,
  ``dir-stall``) compose into a single ``Network.delay_hook`` — chained
  via :func:`repro.network.noc.compose_delay_hooks` onto whatever hook is
  already installed (e.g. a schedule-exploration controller), never
  replacing it.  The NoC applies its per-(src, dst) FIFO clamp *after*
  the hook, so no fault can reorder a flow;
* ``squash-storm`` wraps each ScalableBulk directory's admission step
  (``_maybe_advance``): while the window is open, a ready, unheld group
  is failed with the storm's probability — exactly the legal
  genuine-collision path (``_fail_group``), so safety is preserved while
  starvation pressure builds.  The module's reserved chunk is always
  spared, as the reservation rule requires;
* ``core-jitter`` wraps one core's ``request_commit``: initial commit
  requests issued inside the window are deferred by a drawn number of
  cycles (the chunk stays COMMITTING; the deferred send is skipped if the
  chunk was squashed or displaced meanwhile).

Every random draw comes from a substream of the plan seed (one per fault,
labelled by index and kind), so the same plan takes the same decisions in
any process.  An empty plan installs nothing at all: the machine stays on
the exact seed code path, byte for byte.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.cpu.chunk import ChunkState
from repro.engine.rng import DeterministicRng
from repro.faults.plan import FaultPlan, FaultSpec
from repro.network.message import Message, dir_node
from repro.network.noc import compose_delay_hooks

#: per-message extra-delay contribution of one network fault
_NetFault = Callable[[Message], int]


def _in_window(now: int, spec: FaultSpec) -> bool:
    start = int(spec["start"])
    return start <= now < start + int(spec["duration"])


class FaultEngine:
    """Installs a plan's injectors on one machine (call :meth:`install`)."""

    def __init__(self, plan: FaultPlan, machine: Any) -> None:
        self.plan = plan
        self.machine = machine
        self._root = DeterministicRng(plan.seed, "faults")
        #: count of injector activations, by fault index (diagnostics)
        self.activations: List[int] = [0] * len(plan.faults)

    def install(self) -> "FaultEngine":
        net_faults: List[_NetFault] = []
        for index, spec in enumerate(self.plan.faults):
            rng = self._root.split(f"{index}:{spec.kind}")
            if spec.kind == "latency-spike":
                net_faults.append(self._latency_spike(index, spec, rng))
            elif spec.kind == "link-hotspot":
                net_faults.append(self._link_hotspot(index, spec))
            elif spec.kind == "dir-stall":
                net_faults.append(self._dir_stall(index, spec))
            elif spec.kind == "squash-storm":
                self._install_storm(index, spec, rng)
            elif spec.kind == "core-jitter":
                self._install_jitter(index, spec, rng)
            else:  # pragma: no cover - FaultSpec.make already validates
                raise ValueError(f"unknown fault kind {spec.kind!r}")
        if net_faults:
            network = self.machine.network

            def fault_delays(msg: Message, latency: int) -> int:
                del latency
                return sum(f(msg) for f in net_faults)

            network.delay_hook = compose_delay_hooks(network.delay_hook,
                                                     fault_delays)
        return self

    # ------------------------------------------------------------------
    # Network faults (delay_hook contributions)
    # ------------------------------------------------------------------
    def _latency_spike(self, index: int, spec: FaultSpec,
                       rng: DeterministicRng) -> _NetFault:
        sim = self.machine.sim
        extra = int(spec["extra"])
        jitter = int(spec["jitter"])

        def fault(msg: Message) -> int:
            del msg
            if not _in_window(sim.now, spec):
                return 0
            self.activations[index] += 1
            return extra + (rng.randint(0, jitter) if jitter > 0 else 0)

        return fault

    def _link_hotspot(self, index: int, spec: FaultSpec) -> _NetFault:
        sim = self.machine.sim
        network = self.machine.network
        tile = int(spec["tile"]) % network.topology.n_tiles
        extra = int(spec["extra"])

        def fault(msg: Message) -> int:
            if not _in_window(sim.now, spec):
                return 0
            if tile not in (network.tile_of(msg.src),
                            network.tile_of(msg.dst)):
                return 0
            self.activations[index] += 1
            return extra

        return fault

    def _dir_stall(self, index: int, spec: FaultSpec) -> _NetFault:
        sim = self.machine.sim
        target = dir_node(int(spec["dir"])
                          % self.machine.config.n_directories)
        extra = int(spec["extra"])

        def fault(msg: Message) -> int:
            if msg.dst != target or not _in_window(sim.now, spec):
                return 0
            self.activations[index] += 1
            return extra

        return fault

    # ------------------------------------------------------------------
    # Squash storm (ScalableBulk directories only)
    # ------------------------------------------------------------------
    def _install_storm(self, index: int, spec: FaultSpec,
                       rng: DeterministicRng) -> None:
        # Imported here so the baseline-protocol path never touches the
        # ScalableBulk engine module.
        from repro.core.directory_engine import ScalableBulkDirectory
        sim = self.machine.sim
        prob = float(spec["prob"])
        for directory in self.machine.directories:
            if not isinstance(directory, ScalableBulkDirectory):
                continue
            self._wrap_storm(directory, spec, rng, prob, sim, index)

    def _wrap_storm(self, directory: Any, spec: FaultSpec,
                    rng: DeterministicRng, prob: float, sim: Any,
                    index: int) -> None:
        inner = directory._maybe_advance

        def advance(entry: Any) -> None:
            if (_in_window(sim.now, spec)
                    and entry.ready() and not entry.held
                    and self._storm_eligible(directory, entry)
                    and rng.bernoulli(prob)):
                self.activations[index] += 1
                directory._fail_group(entry)
                return
            inner(entry)

        directory._maybe_advance = advance

    @staticmethod
    def _storm_eligible(directory: Any, entry: Any) -> bool:
        """Never storm the module's reserved chunk: the reservation rule
        guarantees it wins here, and the storm must not break that."""
        tag = entry.cid[0]
        return directory.reserved_for != (tag.core, tag.seq)

    # ------------------------------------------------------------------
    # Core-side jitter
    # ------------------------------------------------------------------
    def _install_jitter(self, index: int, spec: FaultSpec,
                        rng: DeterministicRng) -> None:
        core_id = int(spec["core"]) % self.machine.config.n_cores
        core = self.machine.cores[core_id]
        engine = core.engine
        sim = self.machine.sim
        max_extra = max(1, int(spec["max_extra"]))
        inner = engine.request_commit

        def request(chunk: Any) -> None:
            if not _in_window(sim.now, spec):
                inner(chunk)
                return
            self.activations[index] += 1
            delay = rng.randint(1, max_extra)

            def fire() -> None:
                # Skip if the chunk was squashed (it re-requests via the
                # respec path) or is no longer the committing head.
                if (chunk.state is ChunkState.COMMITTING
                        and core.committing_head is chunk):
                    inner(chunk)

            sim.schedule(delay, fire)

        engine.request_commit = request


def apply_plan(plan: FaultPlan, machine: Any) -> FaultEngine:
    """Build and install a :class:`FaultEngine`; returns it for stats."""
    return FaultEngine(plan, machine).install()


__all__ = ["FaultEngine", "apply_plan"]
