"""The liveness watchdog: "is anything still committing?".

A periodic, **read-only** check: every ``window`` cycles the watchdog
compares the machine-wide committed-chunk count against the previous
check.  No progress and unfinished cores -> one :class:`WatchdogFire`,
carrying a snapshot of the live protocol state (per-directory CST
entries, held bits, reservations, starvation tallies; per-core queue
depths) — dumped through the obs bus ``watchdog_fire`` hook when a bus is
attached, and always kept on ``watchdog.fires``.

Because the check only *reads* machine state, attaching a watchdog never
changes what the simulation computes: its events consume sequence numbers
but all other events keep their relative order, and no stats field is
touched.  The empty-fault-plan regression test runs with the watchdog
attached to pin that down.

After ``max_fires`` total fires the watchdog stops rescheduling itself so
a genuinely deadlocked machine can quiesce — the runner then raises its
unfinished-cores error and the invariant monitor records SB403 (or SB404
when the event budget trips first).  While commits keep arriving the
watchdog keeps watching, silently, until every core finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.bus import NullBus, ctag_str

DEFAULT_WINDOW = 25_000
DEFAULT_MAX_FIRES = 3


@dataclass
class WatchdogFire:
    """One commit-free window observed on an unfinished machine."""

    time: int
    commits: int                       #: machine-wide committed chunks so far
    snapshot: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"time": self.time, "commits": self.commits,
                "snapshot": self.snapshot}


def machine_snapshot(machine: Any) -> Dict[str, Any]:
    """A JSON-able dump of the live group/CST/reservation state."""
    from repro.core.directory_engine import ScalableBulkDirectory
    dirs: List[Dict[str, Any]] = []
    for directory in machine.directories:
        if isinstance(directory, ScalableBulkDirectory):
            dirs.append({
                "dir": directory.dir_id,
                "cst": [{"cid": ctag_str(e.cid), "held": bool(e.held),
                         "ready": bool(e.ready())}
                        for e in sorted(directory.cst.values(),
                                        key=lambda e: ctag_str(e.cid) or "")],
                "reserved_for": (list(directory.reserved_for)
                                 if directory.reserved_for else None),
                "fail_counts": {f"{c}.{s}": n for (c, s), n
                                in sorted(directory.fail_counts.items())},
            })
    cores = [{
        "core": core.core_id,
        "queued": len(core.active_chunks()),
        "head": ctag_str(core.committing_head.tag)
        if core.committing_head is not None else None,
        "committed": int(core.stats.chunks_committed),
        "finished": bool(core.finished),
    } for core in machine.cores]
    return {"time": int(machine.sim.now), "dirs": dirs, "cores": cores}


class LivenessWatchdog:
    """Periodic no-commit detector; see the module docstring."""

    def __init__(self, machine: Any, *, window: int = DEFAULT_WINDOW,
                 max_fires: int = DEFAULT_MAX_FIRES,
                 bus: Optional[NullBus] = None) -> None:
        if window <= 0:
            raise ValueError(f"watchdog window must be positive, got {window}")
        self.machine = machine
        self.window = int(window)
        self.max_fires = int(max_fires)
        self.bus = bus
        self.fires: List[WatchdogFire] = []
        self.checks = 0
        self._last_commits = -1
        self._stopped = False

    # ------------------------------------------------------------------
    def attach(self) -> "LivenessWatchdog":
        """Schedule the first check ``window`` cycles from now."""
        self.machine.sim.schedule(self.window, self._check)
        return self

    def _total_commits(self) -> int:
        return sum(int(c.stats.chunks_committed)
                   for c in self.machine.cores)

    def _check(self) -> None:
        self.checks += 1
        if all(core.finished for core in self.machine.cores):
            self._stopped = True
            return  # run complete; let the simulator quiesce
        commits = self._total_commits()
        if commits == self._last_commits:
            fire = WatchdogFire(time=int(self.machine.sim.now),
                                commits=commits,
                                snapshot=machine_snapshot(self.machine))
            self.fires.append(fire)
            if self.bus is not None and self.bus.enabled:
                self.bus.watchdog_fire(fire.time, len(self.fires),
                                       commits, fire.snapshot)
            if len(self.fires) >= self.max_fires:
                # Stop watching so a wedged machine can quiesce and the
                # runner's unfinished-cores error (SB403) surfaces.
                self._stopped = True
                return
        self._last_commits = commits
        self.machine.sim.schedule(self.window, self._check)


def attach_watchdog(machine: Any, *, window: int = DEFAULT_WINDOW,
                    max_fires: int = DEFAULT_MAX_FIRES,
                    bus: Optional[NullBus] = None) -> LivenessWatchdog:
    """Convenience: build, attach and return a watchdog."""
    return LivenessWatchdog(machine, window=window, max_fires=max_fires,
                            bus=bus).attach()


__all__ = ["DEFAULT_MAX_FIRES", "DEFAULT_WINDOW", "LivenessWatchdog",
           "WatchdogFire", "attach_watchdog", "machine_snapshot"]
