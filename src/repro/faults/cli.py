"""``python -m repro chaos``: seeded fault-injection campaigns.

Modes:

* default — generate ``--plans N`` fault plans from ``--seed`` (rotated
  over the campaign scenarios, or pinned with ``--scenario``) and run
  each with the liveness watchdog and the full invariant monitor
  attached.  Exit 1 on any safety/liveness violation or watchdog fire;
  failing plans are ddmin-shrunk and written as replayable artifacts
  under ``--artifacts DIR`` (or shown inline).
* ``--replay ARTIFACT`` — re-run a saved failure artifact; exit 0 iff
  the replay reproduces the artifact's primary violation code.
* ``--mutation-check`` — the campaign's teeth test: every registered
  mutation runs nominally *and* under a storm-heavy stress plan.  Exit 1
  unless each chaos-only mutation (e.g. ``reservation-leak``) is caught
  under chaos and — demonstrating why chaos is needed — missed nominally.
* ``--list`` — fault kinds, campaign scenarios and chaos-only mutations.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.explore.mutations import MUTATIONS
from repro.analysis.explore.scenarios import SCENARIOS
from repro.faults.campaign import (DEFAULT_SCENARIOS, artifact_json,
                                   chaos_worker, generate_campaign,
                                   load_artifact, mutation_check_worker,
                                   replay_artifact)
from repro.faults.plan import FAULT_KINDS
from repro.faults.watchdog import DEFAULT_WINDOW


def _cmd_list() -> int:
    print("fault kinds:")
    for kind, params in FAULT_KINDS.items():
        print(f"  {kind:14s} ({', '.join(params)})")
    print("campaign scenarios:")
    for name in DEFAULT_SCENARIOS:
        s = SCENARIOS[name]
        print(f"  {name:10s} {s.protocol.value:13s} {s.n_cores} cores, "
              f"pattern={s.pattern}, oci={s.oci}")
    print("chaos-only mutations (run via --mutation-check):")
    for name, m in MUTATIONS.items():
        if m.chaos_only:
            print(f"  {name:24s} on {m.scenario}: {m.description} "
                  f"(expect {m.expected})")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    data = load_artifact(args.replay)
    result = replay_artifact(data)
    want = [str(v["code"]) for v in data.get("violations", ())]
    got = result.codes
    print(f"replay of {args.replay}: expected {want or 'clean'}, "
          f"got {got or 'clean'} "
          f"({result.commits} commits, {result.cycles:,} cycles, "
          f"{len(result.watchdog_fires)} watchdog fires)")
    ok = (want[0] in got) if want else result.ok
    return 0 if ok else 1


def _cmd_mutation_check(args: argparse.Namespace) -> int:
    from repro.harness.parallel import run_ordered
    payloads = [{"mutation": name, "seed": args.seed}
                for name in sorted(MUTATIONS)]
    bad: List[str] = []

    def show(_i: int, _payload: Dict[str, Any],
             r: Dict[str, Any]) -> None:
        nominal = "/".join(r["nominal_codes"]) or "clean"
        chaos = "/".join(r["chaos_codes"]) or "clean"
        line = (f"  {r['mutation']:24s} nominal={nominal:12s} "
                f"chaos={chaos}")
        if not r["chaos_only"]:
            # Nominal mutations are the explore suite's contract; here
            # they are report-only (chaos may or may not re-catch them).
            print(line)
            return
        if r["chaos_caught"] and not r["nominal_caught"]:
            print(f"{line}  [chaos-only: caught under chaos, "
                  f"invisible nominally]")
        else:
            why = ("missed under chaos" if not r["chaos_caught"]
                   else "already visible nominally")
            print(f"{line}  FAIL ({why}, expected {r['expected']})")
            bad.append(r["mutation"])

    print(f"mutation check (seed {args.seed}, storm-heavy stress plan):")
    run_ordered(mutation_check_worker, payloads, jobs=args.jobs,
                on_result=show)
    if bad:
        print(f"{len(bad)} chaos-only mutation(s) failed the check: "
              f"{', '.join(bad)}")
        return 1
    print("mutation check passed: chaos catches what nominal timing "
          "cannot")
    return 0


def _artifact_path(directory: str, scenario: str, plan_name: str) -> str:
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"{scenario}-{plan_name}.json")


def _chaos_record(payload: Dict[str, Any], r: Dict[str, Any],
                  git_rev: str, source: str):
    """One campaign verdict -> a first-class ``chaos`` store row."""
    from repro.store.schema import (KIND_CHAOS, Record, STATUS_FAILED,
                                    STATUS_OK)
    artifact = r.get("artifact")
    violations = artifact["violations"] if artifact else []
    return Record(
        kind=KIND_CHAOS, cell_key=f"{r['scenario']}/{r['plan_name']}",
        series=f"{r['scenario']}/{r['plan_name']}",
        seed=int(payload["plan"].get("seed", 0) or 0), git_rev=git_rev,
        status=STATUS_OK if r["ok"] else STATUS_FAILED,
        metrics={"cycles": r.get("cycles", 0),
                 "commits": r.get("commits", 0),
                 "violations": len(violations),
                 "watchdog_fires": r.get("watchdog_fires", 0),
                 "n_faults": r.get("n_faults", 0)},
        payload=artifact if artifact is not None else
        {k: v for k, v in r.items() if k != "artifact"},
        error="/".join(r.get("codes", ())), source=source)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.harness.parallel import run_ordered
    if args.scenario is not None:
        if args.scenario not in SCENARIOS:
            raise SystemExit(f"unknown scenario {args.scenario!r} "
                             f"(choices: {', '.join(SCENARIOS)})")
        names: Sequence[str] = [args.scenario]
    else:
        names = DEFAULT_SCENARIOS
    campaign = generate_campaign(args.seed, args.plans, names)
    payloads = [{
        "scenario": scenario,
        "plan": plan.to_json(),
        "watchdog": args.watchdog,
        "max_events": args.max_events,
        "minimize": args.minimize,
    } for scenario, plan in campaign]
    failures: List[str] = []

    store = None
    git_rev = ""
    if args.store is not None:
        from repro.provenance import git_rev as current_rev
        from repro.store.db import ResultStore
        store = ResultStore(args.store)
        git_rev = current_rev() or ""

    def show(_i: int, payload: Dict[str, Any],
             r: Dict[str, Any]) -> None:
        if store is not None:
            # one transaction per verdict: the campaign checkpoints like
            # the sweep campaign runner does
            store.put(_chaos_record(payload, r, git_rev,
                                    source=f"chaos:seed{args.seed}"))
        if r["ok"]:
            print(f"clean   {r['plan_name']} on {r['scenario']:8s} "
                  f"({r['n_faults']} faults, {r['commits']} commits, "
                  f"{r['cycles']:,} cycles)")
            return
        failures.append(r["plan_name"])
        codes = "/".join(r["codes"]) or "watchdog"
        print(f"FAIL    {r['plan_name']} on {r['scenario']:8s} "
              f"{codes} ({r['watchdog_fires']} watchdog fires)")
        artifact = r.get("artifact")
        if artifact is None:
            return
        for v in artifact["violations"]:
            print(f"  {v['code']} [{v['rule']}] t={v['time']}: "
                  f"{v['detail']}")
        if args.artifacts:
            path = _artifact_path(args.artifacts, r["scenario"],
                                  r["plan_name"])
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(artifact, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"  artifact ({len(artifact['plan']['faults'])} faults "
                  f"after shrink) -> {path}")

    print(f"chaos campaign: {args.plans} plans, seed {args.seed}, "
          f"scenarios {', '.join(names)}")
    try:
        run_ordered(chaos_worker, payloads, jobs=args.jobs, on_result=show)
    finally:
        if store is not None:
            store.close()
            print(f"stored {len(payloads)} chaos verdicts in {args.store}")
    if failures:
        print(f"{len(failures)} plan(s) failed: {', '.join(failures)}")
        return 1
    print(f"all {args.plans} plans clean (no safety or liveness "
          f"violations, no watchdog fires)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="deterministic fault-injection campaigns against the "
                    "protocol engines (see docs/robustness.md)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed; every plan derives from it")
    parser.add_argument("--plans", type=int, default=25,
                        help="number of fault plans to generate "
                             "(default 25)")
    parser.add_argument("--scenario", default=None,
                        help="pin one scenario instead of the campaign "
                             "rotation (see --list)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="fan plans out over N worker processes "
                             "(0 = all cores); verdicts and exit codes "
                             "are unchanged")
    parser.add_argument("--watchdog", type=int, default=DEFAULT_WINDOW,
                        metavar="CYCLES",
                        help="liveness watchdog window (default "
                             f"{DEFAULT_WINDOW})")
    parser.add_argument("--max-events", type=int, default=None,
                        help="override the per-run event budget")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write shrunk failure artifacts here")
    parser.add_argument("--store", default=None, metavar="DB",
                        help="also record every plan verdict in this "
                             "result store (python -m repro store)")
    parser.add_argument("--no-minimize", dest="minimize",
                        action="store_false",
                        help="keep failing plans as generated instead of "
                             "ddmin-shrinking them")
    parser.add_argument("--replay", default=None, metavar="ARTIFACT",
                        help="re-run a saved failure artifact and check "
                             "it reproduces")
    parser.add_argument("--mutation-check", action="store_true",
                        help="teeth test: chaos-only bugs must be caught "
                             "under chaos and missed nominally")
    parser.add_argument("--list", action="store_true",
                        help="list fault kinds, scenarios and chaos-only "
                             "mutations, then exit")
    args = parser.parse_args(argv)
    from repro.harness.parallel import resolve_jobs
    args.jobs = resolve_jobs(args.jobs)

    if args.list:
        return _cmd_list()
    if args.replay:
        return _cmd_replay(args)
    if args.mutation_check:
        return _cmd_mutation_check(args)
    return _cmd_campaign(args)


__all__ = ["main"]
