"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate one application under one protocol and print stats
compare    run all four protocols on one application side by side
apps       list the modelled applications and their key parameters
sweep      full experiment matrix (delegates to repro.harness.sweep)
lint       protocol linter + determinism static analysis (repro.analysis)
explore    schedule-exploration model checker (repro.analysis.explore)
trace      instrumented run: Perfetto/JSONL/CSV export + critical path
bench      micro + macro performance benchmarks (repro.harness.bench)
chaos      deterministic fault-injection campaigns (repro.faults)
profile    host-time self-profiler: where the cycles/sec go (repro.obs.profile)
store      persistent experiment service: result store, campaigns, dashboard
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.config import ProtocolKind, SystemConfig
from repro.harness.runner import run_app
from repro.workloads.profiles import APP_PROFILES, PARSEC_APPS, SPLASH2_APPS

PROTO_BY_NAME = {p.value.lower(): p for p in ProtocolKind}


def _make_bus(trace_out):
    """Build an instrumentation bus when ``--trace`` was given."""
    if not trace_out:
        return None
    from repro.obs.bus import InstrumentationBus
    return InstrumentationBus()


def _dump_trace(bus, out: str) -> None:
    from repro.obs.critical_path import analyze_commit_paths
    from repro.obs.export import to_perfetto

    doc = to_perfetto(bus, out)
    print(f"  trace: {len(doc['traceEvents'])} events -> {out} "
          f"(open in ui.perfetto.dev)")
    print(analyze_commit_paths(bus).render(limit=5))


def _cmd_run(args) -> int:
    bus = _make_bus(args.trace)
    profiler = None
    if args.profile or args.metrics_interval:
        from repro.obs.profile import make_profiler
        config = SystemConfig(n_cores=args.cores,
                              protocol=PROTO_BY_NAME[args.protocol.lower()])
        profiler = make_profiler(config,
                                 metrics_interval=args.metrics_interval,
                                 metrics_out=args.metrics_out)
    result = run_app(args.app, n_cores=args.cores,
                     protocol=PROTO_BY_NAME[args.protocol.lower()],
                     chunks_per_partition=args.chunks, oracle=args.oracle,
                     bus=bus, profile=profiler)
    print(f"{args.app} on {args.cores} cores "
          f"({result.protocol.value}): {result.total_cycles:,} cycles, "
          f"{result.chunks_committed} chunks")
    for cat, frac in result.breakdown_fractions().items():
        print(f"  {cat:10s} {frac * 100:5.1f}%")
    print(f"  commit latency {result.mean_commit_latency:.1f} cy | "
          f"dirs/commit {result.mean_dirs_per_commit:.2f} | "
          f"squashes {result.squashes_conflict}+{result.squashes_alias}")
    if profiler is not None:
        print()
        print(profiler.report().render())
        if profiler.stream is not None and args.metrics_out:
            print(f"  metrics: {profiler.stream.snapshots_written} snapshots "
                  f"-> {args.metrics_out}")
    if bus is not None:
        _dump_trace(bus, args.trace)
    return 0


def _trace_out_for(trace: str, proto: ProtocolKind) -> str:
    """One trace file per protocol: base.ext -> base.<proto>.ext."""
    root, dot, ext = trace.rpartition(".")
    return (f"{root}.{proto.value.lower()}.{ext}" if dot
            else f"{trace}.{proto.value.lower()}")


def _cmd_compare(args) -> int:
    from repro.harness.parallel import (resolve_jobs, run_ordered,
                                        run_protocol_record)
    payloads = [{
        "app": args.app,
        "n_cores": args.cores,
        "protocol": proto.value,
        "chunks": args.chunks,
        "oracle": args.oracle,
        "trace_out": _trace_out_for(args.trace, proto) if args.trace else None,
    } for proto in ProtocolKind]
    print(f"{args.app} on {args.cores} cores:")
    print(f"{'protocol':14s} {'cycles':>10s} {'commit lat':>10s} "
          f"{'commit%':>8s} {'queue':>6s}")

    def show(_i, _payload, r) -> None:
        print(f"{r['protocol']:14s} {r['total_cycles']:10,d} "
              f"{r['mean_commit_latency']:10.1f} "
              f"{r['commit_frac'] * 100:7.1f}% {r['mean_queue_length']:6.2f}")
        if r.get("trace_out"):
            print(f"    trace: {r['trace_events']} events -> "
                  f"{r['trace_out']}")

    # With --jobs the four protocol runs execute concurrently; rows are
    # still printed in ProtocolKind order because run_ordered hands
    # results over in submission order.
    run_ordered(run_protocol_record, payloads, jobs=resolve_jobs(args.jobs),
                on_result=show)
    return 0


def _cmd_apps(_args) -> int:
    print(f"{'app':14s} {'suite':8s} {'pattern':10s} {'shared%':>7s} "
          f"{'pages/chunk':>11s} {'lines':>6s}")
    for name in list(SPLASH2_APPS) + list(PARSEC_APPS):
        p = APP_PROFILES[name]
        lo, hi = p.shared_pages_per_chunk
        print(f"{name:14s} {p.suite:8s} {p.sharing_pattern:10s} "
              f"{p.shared_frac * 100:6.0f}% {f'{lo}-{hi}':>11s} "
              f"{p.lines_per_chunk:6d}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        # delegate untouched so all of sweep's own flags work
        from repro.harness import sweep
        return sweep.main(argv[1:])
    if argv and argv[0] == "lint":
        # delegate untouched so all of lint's own flags work
        from repro.analysis import cli as lint_cli
        return lint_cli.main(argv[1:])
    if argv and argv[0] == "explore":
        # delegate untouched so all of explore's own flags work
        from repro.analysis.explore import cli as explore_cli
        return explore_cli.main(argv[1:])
    if argv and argv[0] == "trace":
        # delegate untouched so all of trace's own flags work
        from repro.obs import cli as trace_cli
        return trace_cli.main(argv[1:])
    if argv and argv[0] == "bench":
        # delegate untouched so all of bench's own flags work
        from repro.harness import bench
        return bench.main(argv[1:])
    if argv and argv[0] == "chaos":
        # delegate untouched so all of chaos's own flags work
        from repro.faults import cli as chaos_cli
        return chaos_cli.main(argv[1:])
    if argv and argv[0] == "profile":
        # delegate untouched so all of profile's own flags work
        from repro.obs import profile as profile_cli
        return profile_cli.main(argv[1:])
    if argv and argv[0] == "store":
        # delegate untouched so all of store's own flags work
        from repro.store import cli as store_cli
        return store_cli.main(argv[1:])

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one application")
    p_run.add_argument("app")
    p_run.add_argument("--cores", type=int, default=16)
    p_run.add_argument("--protocol", default="scalablebulk",
                       choices=sorted(PROTO_BY_NAME))
    p_run.add_argument("--chunks", type=int, default=3)
    p_run.add_argument("--oracle", action="store_true",
                       help="attach the invalidation oracle and fail the "
                            "run on any missed conflicting chunk")
    p_run.add_argument("--trace", metavar="OUT",
                       help="record an instrumentation trace and write it "
                            "as Perfetto JSON to OUT")
    p_run.add_argument("--profile", action="store_true",
                       help="attach the host-time self-profiler and print "
                            "the per-subsystem attribution report")
    p_run.add_argument("--metrics-interval", type=int, metavar="CYCLES",
                       help="stream bounded metrics snapshots every CYCLES "
                            "simulated cycles (implies --profile)")
    p_run.add_argument("--metrics-out", metavar="PATH",
                       help="JSONL destination for --metrics-interval "
                            "snapshots")
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="all four protocols side by side")
    p_cmp.add_argument("app")
    p_cmp.add_argument("--cores", type=int, default=16)
    p_cmp.add_argument("--chunks", type=int, default=3)
    p_cmp.add_argument("--oracle", action="store_true",
                       help="attach the invalidation oracle to every run")
    p_cmp.add_argument("--trace", metavar="OUT",
                       help="write one Perfetto trace per protocol "
                            "(OUT gets a .<protocol> suffix)")
    p_cmp.add_argument("--jobs", type=int, default=1,
                       help="run the four protocols on N worker processes "
                            "(0 = all cores); output order is unchanged")
    p_cmp.set_defaults(func=_cmd_compare)

    p_apps = sub.add_parser("apps", help="list modelled applications")
    p_apps.set_defaults(func=_cmd_apps)

    sub.add_parser("sweep", help="full experiment matrix "
                                 "(see python -m repro.harness.sweep -h)")
    sub.add_parser("lint", help="protocol linter + determinism analysis "
                                "(see python -m repro lint -h)")
    sub.add_parser("explore", help="schedule-exploration model checker "
                                   "(see python -m repro explore -h)")
    sub.add_parser("trace", help="instrumented run with Perfetto export "
                                 "(see python -m repro trace -h)")
    sub.add_parser("bench", help="micro + macro performance benchmarks "
                                 "(see python -m repro bench -h)")
    sub.add_parser("chaos", help="deterministic fault-injection campaigns "
                                 "(see python -m repro chaos -h)")
    sub.add_parser("profile", help="host-time self-profiler "
                                   "(see python -m repro profile -h)")
    sub.add_parser("store", help="persistent experiment service "
                                 "(see python -m repro store -h)")

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        rc = main()
    except BrokenPipeError:
        # the consumer closed the pipe early (e.g. ``... | head``); detach
        # stdout so the interpreter shutdown does not print a traceback
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        rc = 0
    sys.exit(rc)
