"""Runtime conformance checking of the Tables 4/5 message orderings.

The appendix of the paper specifies, per directory-module role, the legal
successions of sent/received messages for successful and failed commits.
:class:`ProtocolConformanceChecker` taps every packet on the NoC and
validates a distilled set of those ordering rules for each
(directory, commit instance) conversation:

* a module sends ``g`` only after receiving the ``commit_request`` — and,
  unless it is the leader, also the predecessor's ``g``;
* ``g_success`` is multicast only by the leader, and only after the ``g``
  returned to it (or for a singleton group);
* ``bulk_inv`` and ``commit_success`` are sent only by the leader of a
  formed group;
* a member receives ``g_success`` before ``commit_done``;
* after a module sends or receives ``g_failure`` for a commit instance, it
  never sends a ``g`` or a ``g_success`` for it;
* ``commit_success`` and ``commit_failure`` for the same commit instance
  never both reach the processor (OCI discards aside, a failed instance is
  retried under a new instance id).

Violations are collected (not raised) so a stress test can report every
break at once.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.network.message import Message, MessageType

#: message types that belong to a ScalableBulk commit conversation
_CONVERSATION = {
    MessageType.COMMIT_REQUEST, MessageType.G, MessageType.G_SUCCESS,
    MessageType.G_FAILURE, MessageType.COMMIT_SUCCESS,
    MessageType.COMMIT_FAILURE, MessageType.BULK_INV,
    MessageType.BULK_INV_ACK, MessageType.COMMIT_DONE,
}


@dataclass
class OrderingViolation:
    time: int
    cid: object
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"t={self.time} {self.cid}: {self.rule} ({self.detail})"


@dataclass
class _DirView:
    """What one directory has seen/sent for one commit instance."""

    got_request: bool = False
    got_g: bool = False
    got_g_success: bool = False
    got_g_failure: bool = False
    got_commit_done: bool = False
    sent_g: bool = False
    sent_g_success: bool = False
    sent_g_failure: bool = False
    sent_bulk_inv: bool = False


class ProtocolConformanceChecker:
    """Taps the NoC of a ScalableBulk machine and checks orderings."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.violations: List[OrderingViolation] = []
        self.messages_checked = 0
        #: (dir_id, cid) -> view
        self._views: Dict[Tuple[int, object], _DirView] = defaultdict(_DirView)
        #: cid -> leader dir (from the shipped order)
        self._leaders: Dict[object, int] = {}
        self._orders: Dict[object, tuple] = {}
        #: cid -> outcomes delivered to the processor
        self._outcomes: Dict[object, Set[str]] = defaultdict(set)
        network = machine.network
        original = network.send

        def tapped(msg: Message):
            self._observe(msg)
            return original(msg)

        network.send = tapped

    # ------------------------------------------------------------------
    def _flag(self, cid, rule: str, detail: str = "") -> None:
        self.violations.append(OrderingViolation(
            time=self.machine.sim.now, cid=cid, rule=rule, detail=detail))

    def _observe(self, msg: Message) -> None:
        if msg.mtype not in _CONVERSATION:
            return
        self.messages_checked += 1
        cid = msg.ctag
        now = self.machine.sim.now

        if msg.mtype is MessageType.COMMIT_REQUEST:
            order = msg.payload["order"]
            self._orders[cid] = order
            self._leaders[cid] = order[0]
            # Conservative arrival marking at injection: the g a directory
            # later *sends* always follows its own request's arrival, so
            # this cannot hide that violation class.
            self._views[(msg.dst.index, cid)].got_request = True
            return

        if msg.src.kind == "dir":
            self._check_send(msg, cid, msg.src.index)
        if msg.dst.kind == "dir" and msg.mtype is not MessageType.BULK_INV_ACK:
            self._note_receive(msg, cid, msg.dst.index)
        if msg.dst.kind == "core" and msg.mtype in (
                MessageType.COMMIT_SUCCESS, MessageType.COMMIT_FAILURE):
            kind = ("success" if msg.mtype is MessageType.COMMIT_SUCCESS
                    else "failure")
            if kind in self._outcomes[cid]:
                self._flag(cid, f"duplicate commit_{kind}")
            other = "failure" if kind == "success" else "success"
            if other in self._outcomes[cid]:
                self._flag(cid, "both outcomes delivered",
                           f"{other} then {kind}")
            self._outcomes[cid].add(kind)

    # ------------------------------------------------------------------
    def _check_send(self, msg: Message, cid, dir_id: int) -> None:
        view = self._views[(dir_id, cid)]
        leader = self._leaders.get(cid)
        if msg.mtype is MessageType.G:
            view.sent_g = True
            if view.got_g_failure:
                self._flag(cid, "g after g_failure", f"dir {dir_id}")
            if not view.got_request:
                self._flag(cid, "g before commit_request", f"dir {dir_id}")
            elif dir_id != leader and not view.got_g:
                self._flag(cid, "member g before predecessor g",
                           f"dir {dir_id}")
        elif msg.mtype is MessageType.G_SUCCESS:
            view.sent_g_success = True
            if dir_id != leader:
                self._flag(cid, "g_success from non-leader", f"dir {dir_id}")
            order = self._orders.get(cid, ())
            if len(order) > 1 and not view.got_g:
                self._flag(cid, "g_success before g returned",
                           f"dir {dir_id}")
            if view.got_g_failure:
                self._flag(cid, "g_success after g_failure", f"dir {dir_id}")
        elif msg.mtype is MessageType.G_FAILURE:
            view.sent_g_failure = True
        elif msg.mtype is MessageType.BULK_INV:
            view.sent_bulk_inv = True
            if dir_id != leader:
                self._flag(cid, "bulk_inv from non-leader", f"dir {dir_id}")
            if not view.sent_g_success:
                order = self._orders.get(cid, ())
                if len(order) > 1:
                    self._flag(cid, "bulk_inv before group formed",
                               f"dir {dir_id}")
        elif msg.mtype is MessageType.COMMIT_SUCCESS:
            if dir_id != leader:
                self._flag(cid, "commit_success from non-leader",
                           f"dir {dir_id}")

    def _note_receive(self, msg: Message, cid, dir_id: int) -> None:
        view = self._views[(dir_id, cid)]
        if msg.mtype is MessageType.G:
            view.got_g = True
        elif msg.mtype is MessageType.G_SUCCESS:
            view.got_g_success = True
        elif msg.mtype is MessageType.G_FAILURE:
            view.got_g_failure = True
        elif msg.mtype is MessageType.COMMIT_DONE:
            if not (view.got_g_success or self._leaders.get(cid) == dir_id):
                self._flag(cid, "commit_done before g_success",
                           f"dir {dir_id}")
            view.got_commit_done = True

    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        if self.violations:
            report = "\n".join(str(v) for v in self.violations[:12])
            raise AssertionError(
                f"{len(self.violations)} ordering violation(s):\n{report}")


def attach_conformance_checker(machine) -> ProtocolConformanceChecker:
    """Build the checker and tap the machine's network."""
    return ProtocolConformanceChecker(machine)


__all__ = ["OrderingViolation", "ProtocolConformanceChecker",
           "attach_conformance_checker"]
