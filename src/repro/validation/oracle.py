"""The invalidation-completeness oracle.

At the moment a ScalableBulk group is confirmed (the leader is about to
publish the chunk's writes and send bulk invalidations), every *other*
core whose active chunks truly conflict with the committing write-set must
appear in the accumulated ``inval_vec`` — otherwise a conflicting chunk
would survive unsquashed and serializability would be lost.

The oracle wraps each directory's ``_confirm_group`` with a global check
(it can see all cores; the hardware cannot, which is the point: the
distributed sharer bookkeeping must add up to this global property).

Violations are collected, not raised, so a test can assert
``oracle.violations == []`` after the run and report every break at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.core.directory_engine import ScalableBulkDirectory


@dataclass
class Violation:
    """One break of the invalidation-completeness property."""

    time: int
    committing_cid: object
    writer: int
    missed_core: int
    conflicting_tag: object
    conflict_lines: Set[int]

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (f"t={self.time}: commit {self.committing_cid} by P{self.writer} "
                f"missed conflicting chunk {self.conflicting_tag} on core "
                f"{self.missed_core} (lines {sorted(self.conflict_lines)[:4]})")


class InvalidationOracle:
    """Watches every group confirmation on a ScalableBulk machine."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.violations: List[Violation] = []
        self.commits_checked = 0
        for d in machine.directories:
            if isinstance(d, ScalableBulkDirectory):
                self._wrap(d)

    def _wrap(self, directory: ScalableBulkDirectory) -> None:
        original = directory._confirm_group

        def checked(entry):
            self._check(entry)
            original(entry)

        directory._confirm_group = checked

    def _check(self, entry) -> None:
        self.commits_checked += 1
        write_lines = set(entry.write_lines)
        if not write_lines:
            return
        targets = set(entry.inval_acc) | set(entry.local_sharers)
        for core in self.machine.cores:
            if core.core_id == entry.proc:
                continue
            for chunk in core.active_chunks():
                overlap = write_lines & (chunk.read_lines | chunk.write_lines)
                if overlap and core.core_id not in targets:
                    self.violations.append(Violation(
                        time=self.machine.sim.now,
                        committing_cid=entry.cid,
                        writer=entry.proc,
                        missed_core=core.core_id,
                        conflicting_tag=chunk.tag,
                        conflict_lines=overlap,
                    ))

    def assert_clean(self) -> None:
        """Raise with a readable report if any violation was recorded."""
        if self.violations:
            report = "\n".join(str(v) for v in self.violations[:10])
            raise AssertionError(
                f"{len(self.violations)} invalidation-completeness "
                f"violation(s):\n{report}")


def attach_oracle(machine) -> InvalidationOracle:
    """Convenience: build and attach the oracle to a machine."""
    return InvalidationOracle(machine)


__all__ = ["InvalidationOracle", "Violation", "attach_oracle"]
