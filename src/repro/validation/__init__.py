"""Online correctness oracles for full-machine runs.

The protocol's safety rests on a chain: a chunk's reads/writes register it
as a sharer at the home directory, commit-time expansion finds those
sharers, and the bulk invalidation reaches every one of them, squashing
any truly conflicting chunk (signatures have no false negatives).  The
oracles in this package watch live runs and flag any break in that chain.
"""

from repro.validation.oracle import InvalidationOracle, attach_oracle
from repro.validation.orderings import (
    ProtocolConformanceChecker,
    attach_conformance_checker,
)

__all__ = [
    "InvalidationOracle",
    "ProtocolConformanceChecker",
    "attach_conformance_checker",
    "attach_oracle",
]
