"""Group-ordering helpers (Section 3.2).

The Group Formation protocol requires a *fixed traversal order* over
directory modules to be deadlock- and livelock-free: `g` messages always
flow from higher-priority to lower-priority modules, and the leader is the
highest-priority member.

With the baseline policy, priority is simply ascending module id (leader =
lowest-numbered module).  For long-term fairness the priority can be
rotated (Section 3.2.2): with offset ``k``, module ``k`` has the highest
priority, ``k+1`` the next, and so on modulo the module count.  The
committing processor fixes the order *at request time* and ships it in the
``commit request``; every module uses the shipped order, so a rotation
mid-commit cannot split a group's view.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple


def priority_rank(dir_id: int, n_dirs: int, offset: int = 0) -> int:
    """Rank of a module under rotation ``offset`` (0 = highest priority)."""
    return (dir_id - offset) % n_dirs


def order_gvec(dirs: Iterable[int], n_dirs: int, offset: int = 0
               ) -> Tuple[int, ...]:
    """Traversal order for a group: leader first, then decreasing priority."""
    return tuple(sorted(set(dirs), key=lambda d: priority_rank(d, n_dirs, offset)))


def leader_of(order: Sequence[int]) -> int:
    """The group leader is the highest-priority (first) module."""
    if not order:
        raise ValueError("empty group")
    return order[0]


def successor(order: Sequence[int], dir_id: int) -> int:
    """Module to forward ``g`` to; the last member sends it back to the leader."""
    idx = order.index(dir_id)
    return order[(idx + 1) % len(order)]


def is_last(order: Sequence[int], dir_id: int) -> bool:
    return bool(order) and order[-1] == dir_id


def collision_module(loser_order: Sequence[int], winner_dirs: Iterable[int]
                     ) -> Optional[int]:
    """The paper's Collision module: the highest-priority module common to
    both groups, seen from the loser's traversal order.

    Returns None when the groups share no directory (possible only under
    signature aliasing, in which case the chunks are truly disjoint and the
    processor defers the squash to the commit outcome instead of recalling).
    """
    winner = set(winner_dirs)
    for d in loser_order:
        if d in winner:
            return d
    return None


__all__ = [
    "collision_module",
    "is_last",
    "leader_of",
    "order_gvec",
    "priority_rank",
    "successor",
]
