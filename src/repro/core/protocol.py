"""Machine-level wiring of the ScalableBulk protocol (Table 3, row 1)."""

from __future__ import annotations

from repro.config import ProtocolKind
from repro.core.directory_engine import ScalableBulkDirectory
from repro.core.processor_engine import ScalableBulkEngine
from repro.cpu.core import Core
from repro.protocols.base import Protocol


class ScalableBulkProtocol(Protocol):
    """The protocol proposed by the paper.

    No central agents: a commit talks only to the home directories of the
    chunk's read- and write-sets, and any number of signature-disjoint
    chunks commit concurrently through shared directory modules.
    """

    kind = ProtocolKind.SCALABLEBULK

    def create_directory(self, dir_id: int) -> ScalableBulkDirectory:
        d = ScalableBulkDirectory(dir_id, self.config, self.sim,
                                  self.network, self)
        self.directories.append(d)
        return d

    def create_engine(self, core: Core) -> ScalableBulkEngine:
        e = ScalableBulkEngine(self, core)
        self.engines.append(e)
        return e

    def priority_offset(self) -> int:
        """Current leader-priority rotation offset (Section 3.2.2).

        0 (the paper's baseline lowest-id-first policy) unless
        ``priority_rotation_interval`` is configured, in which case the
        highest priority advances by one module id per interval.
        """
        interval = self.config.priority_rotation_interval
        if interval <= 0:
            return 0
        return (self.sim.now // interval) % self.config.n_directories


__all__ = ["ScalableBulkProtocol"]
