"""ScalableBulk directory module: CST + group formation state machine.

Implements the message orderings of the paper's Tables 4 and 5:

* successful commit (leader): ``R:commit_request -> S:g -> R:g ->
  (S:commit_success & S:g_success* & S:bulk_inv*) -> R:bulk_inv_ack* ->
  S:commit_done*``;
* successful commit (member): ``(R:commit_request & R:g) -> S:g ->
  R:g_success -> R:commit_done``;
* failed commit, collision module: sees both messages of the losing group
  while an incompatible group is (or was, via a recall) in the way, and
  multicasts ``g_failure``; the loser's leader turns that into a
  ``commit_failure`` to the processor;
* commit recall (OCI): registered at the collision module when the
  winner's ``commit_done`` deallocates the winning W signature, firing
  ``g_failure`` the moment the squashed chunk's messages assemble.

Starvation avoidance (Section 3.2.2): after a chunk (identified by
(core, seq), across squash generations) loses ``MAX`` times, every module
that observed the failures reserves itself for that chunk and fails all
other groups until the starving chunk commits through it.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.config import SystemConfig
from repro.core.cst import ChunkCommitState, CommitId, CstEntry
from repro.core.group import successor
from repro.engine.events import Simulator
from repro.memory.directory import DirectoryModule
from repro.network.message import Message, MessageType, core_node, dir_node
from repro.network.noc import Network
from repro.protocols.spec import ProtocolSpec

#: Starvation/reservation identity: a chunk across squash generations.
ChunkIdentity = Tuple[int, int]  # (core, seq)


def _identity(cid: CommitId) -> ChunkIdentity:
    tag = cid[0]
    return (tag.core, tag.seq)


def _cst_scan_key(entry: CstEntry) -> Tuple[int, int, int, int]:
    """Total order over CST entries for collision scanning: chunk tag then
    retry attempt — independent of dict insertion order."""
    tag = entry.cid[0]
    return (tag.core, tag.seq, tag.gen, entry.cid[1])


class ScalableBulkDirectory(DirectoryModule):
    """One ScalableBulk directory module (Figure 6)."""

    def __init__(self, dir_id: int, config: SystemConfig, sim: Simulator,
                 network: Network, protocol) -> None:
        super().__init__(dir_id, config, sim, network)
        self.protocol = protocol
        self.cst: Dict[CommitId, CstEntry] = {}
        self.failed_cids: Set[CommitId] = set()
        self.recall_watch: Set[CommitId] = set()
        self.fail_counts: Dict[ChunkIdentity, int] = {}
        self.reserved_for: Optional[ChunkIdentity] = None
        # statistics
        self.groups_formed = 0
        self.groups_failed = 0

    # ------------------------------------------------------------------
    # Primitive 1: preventing access to a set of directory entries
    # ------------------------------------------------------------------
    def read_blocked(self, line_addr: int) -> bool:
        """Nack loads that hit any live committing W signature (Fig. 2)."""
        for entry in self.cst.values():
            if entry.got_request and entry.w_sig.contains(line_addr):
                return True
        return False

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def handle_protocol_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.COMMIT_REQUEST:
            self._on_commit_request(msg)
        elif mtype is MessageType.G:
            self._on_g(msg)
        elif mtype is MessageType.G_SUCCESS:
            self._on_g_success(msg)
        elif mtype is MessageType.G_FAILURE:
            self._on_g_failure(msg)
        elif mtype is MessageType.BULK_INV_ACK:
            self._on_bulk_inv_ack(msg)
        elif mtype is MessageType.BULK_INV_NACK:
            self._on_bulk_inv_nack(msg)
        elif mtype is MessageType.COMMIT_DONE:
            self._on_commit_done(msg)
        else:
            raise NotImplementedError(f"unexpected {mtype} at directory")

    # ------------------------------------------------------------------
    # commit_request: (R, W, g_vec) arrives from the processor
    # ------------------------------------------------------------------
    def _on_commit_request(self, msg: Message) -> None:
        cid: CommitId = msg.ctag
        if cid in self.failed_cids:
            return  # already failed here before the request arrived
        entry = self.cst.get(cid)
        if entry is None:
            entry = CstEntry(cid=cid, dir_id=self.dir_id)
            self.cst[cid] = entry
        entry.got_request = True
        entry.proc = msg.payload["proc"]
        entry.r_sig = msg.payload["r_sig"]
        entry.w_sig = msg.payload["w_sig"]
        entry.order = msg.payload["order"]
        entry.write_lines = msg.payload["write_lines"]
        # Signature expansion: find locally homed written lines and their
        # sharers.  This happens in parallel across modules, typically off
        # the critical path (Section 3.2.1).  Per-line state work scales
        # with the locally homed share of the write-set.
        local_share = max(1, len(entry.write_lines) // max(1, len(entry.order)))
        delay = (self.config.signature_expand_cycles
                 + self.config.dir_line_update_cycles * local_share // 2)
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id, len(self.cst))
        self.sim.schedule(delay, lambda: self._expansion_done(cid))

    def _expansion_done(self, cid: CommitId) -> None:
        entry = self.cst.get(cid)
        if entry is None:
            return  # failed while expanding
        entry.expanded = True
        entry.local_write_lines = [
            line for line in entry.write_lines
            if self._homed_here(line)
        ]
        entry.local_sharers = self.sharers_to_invalidate(
            entry.local_write_lines, entry.proc)
        self._maybe_advance(entry)

    def _homed_here(self, line_addr: int) -> bool:
        page = line_addr * self.config.line_bytes // self.config.page_bytes
        return self.protocol.page_mapper.lookup(page) == self.dir_id

    # ------------------------------------------------------------------
    # g: grab message from the predecessor in the group
    # ------------------------------------------------------------------
    def _on_g(self, msg: Message) -> None:
        cid: CommitId = msg.ctag
        if cid in self.failed_cids:
            return
        entry = self.cst.get(cid)
        if entry is None:
            entry = CstEntry(cid=cid, dir_id=self.dir_id)
            entry.order = msg.payload["order"]
            self.cst[cid] = entry
        if entry.leader_here and entry.held:
            # The g came back around the ring: the group is formed.
            entry.inval_acc |= msg.payload["inval_vec"]
            self._confirm_group(entry)
            return
        entry.got_g = True
        entry.inval_acc |= msg.payload["inval_vec"]
        if not entry.order:
            entry.order = msg.payload["order"]
        if self.obs.enabled:
            self.obs.grab_recv(self.sim.now, self.dir_id, cid)
            self.obs.dir_occupancy(self.sim.now, self.dir_id, len(self.cst))
        self._maybe_advance(entry)

    # ------------------------------------------------------------------
    # The admission decision (the collision rule)
    # ------------------------------------------------------------------
    def _maybe_advance(self, entry: CstEntry) -> None:
        if entry.held or not entry.ready():
            return

        # OCI recall registered before this chunk's messages assembled.
        if entry.cid in self.recall_watch:
            self.recall_watch.discard(entry.cid)
            self._fail_group(entry)
            return

        # Starvation reservation: behave as if the requester lost.  The
        # rejection is a deliberate deferral, not a collision, so it does
        # not count toward the loser's own starvation tally.
        if (self.reserved_for is not None
                and _identity(entry.cid) != self.reserved_for):
            self._fail_group(entry, genuine=False)
            return

        # Collision rule: this module already irrevocably chose any group
        # it holds; an incompatible newcomer loses here and now.  The scan
        # order is irrelevant to the outcome (the newcomer loses whichever
        # held entry it collides with first), but it must still be explicit
        # so event order never depends on dict insertion order.
        for other in sorted(self.cst.values(), key=_cst_scan_key):
            if other is entry or not other.held:
                continue
            if self._collides(entry, other):
                self.protocol.stats.group_collisions += 1
                self._resolve_collision(entry, other)
                return

        # Admit: set the h bit and pass the grab onward.
        entry.state = ChunkCommitState.HELD
        self._after_admit(entry)

    def _collides(self, entry: CstEntry, other: CstEntry) -> bool:
        """The admission-time incompatibility test (Section 3.2.1).

        A seam for the schedule explorer's mutation harness; the default
        is exactly the paper's signature-probe test."""
        return entry.incompatible_with(other)

    def _resolve_collision(self, entry: CstEntry, other: CstEntry) -> None:
        """``other`` is held here, so the newcomer loses — a module never
        revokes a group it already admitted (Section 3.2.1).  Also a
        mutation seam."""
        self._fail_group(entry)

    def _after_admit(self, entry: CstEntry) -> None:
        entry.inval_acc |= entry.local_sharers
        if entry.leader_here and len(entry.order) == 1:
            if self.obs.enabled:
                self.obs.grab_admit(self.sim.now, self.dir_id, entry.cid,
                                    None)
            self._confirm_group(entry)
            return
        nxt = successor(entry.order, self.dir_id)
        if self.obs.enabled:
            self.obs.grab_admit(self.sim.now, self.dir_id, entry.cid, nxt)
        self.network.unicast(
            MessageType.G, self.node, dir_node(nxt), ctag=entry.cid,
            inval_vec=set(entry.inval_acc), order=entry.order,
        )

    # ------------------------------------------------------------------
    # Group formed (leader)
    # ------------------------------------------------------------------
    def _confirm_group(self, entry: CstEntry) -> None:
        entry.state = ChunkCommitState.CONFIRMED
        self.groups_formed += 1
        if self.obs.enabled:
            self.obs.group_formed(self.sim.now, self.dir_id, entry.cid,
                                  entry.proc, entry.order)
        members = [d for d in entry.order if d != self.dir_id]
        if members:
            self.network.multicast(
                MessageType.G_SUCCESS, self.node,
                [dir_node(d) for d in members], ctag=entry.cid)
        self.apply_commit(entry.local_write_lines, entry.proc)
        self.protocol.stats.attempt_group_formed(entry.cid)

        self.network.unicast(
            MessageType.COMMIT_SUCCESS, self.node, core_node(entry.proc),
            ctag=entry.cid)

        targets = sorted(entry.inval_acc - {entry.proc})
        entry.acks_expected = len(targets)
        entry.bulk_inv_payload = {
            "w_sig": entry.w_sig,
            "write_lines": entry.write_lines,
            "winner_order": entry.order,
            "leader": self.dir_id,
        }
        for proc in targets:
            self.network.unicast(
                MessageType.BULK_INV, self.node, core_node(proc),
                ctag=entry.cid, **entry.bulk_inv_payload)
        if entry.acks_expected == 0:
            self._finish_commit(entry)

    def _on_g_success(self, msg: Message) -> None:
        entry = self.cst.get(msg.ctag)
        if entry is None:
            return
        entry.state = ChunkCommitState.CONFIRMED
        self.apply_commit(entry.local_write_lines, entry.proc)

    # ------------------------------------------------------------------
    # Invalidation acks and completion (leader)
    # ------------------------------------------------------------------
    def _on_bulk_inv_ack(self, msg: Message) -> None:
        entry = self.cst.get(msg.ctag)
        if entry is None:
            return
        entry.acks_received += 1
        recall = msg.payload.get("recall")
        if recall is not None:
            entry.recalls.append(recall)
        if entry.acks_received >= entry.acks_expected:
            self._finish_commit(entry)

    def _on_bulk_inv_nack(self, msg: Message) -> None:
        """A conservative (non-OCI) processor bounced our invalidation."""
        entry = self.cst.get(msg.ctag)
        if entry is None:
            return
        self.protocol.stats.bulk_inv_nacks += 1
        proc = msg.payload["proc"]
        if self.obs.enabled:
            self.obs.dir_nack(self.sim.now, self.dir_id, msg.ctag, proc)
        entry.nack_retries += 1
        base = self.config.nack_retry_backoff_cycles
        jitter = (entry.nack_retries * 11 + self.dir_id * 5) % (2 * base)
        self.sim.schedule(base + jitter,
                          lambda: self._resend_bulk_inv(msg.ctag, proc))

    def _resend_bulk_inv(self, cid: CommitId, proc: int) -> None:
        entry = self.cst.get(cid)
        if entry is None or entry.bulk_inv_payload is None:
            return
        self.network.unicast(
            MessageType.BULK_INV, self.node, core_node(proc),
            ctag=cid, **entry.bulk_inv_payload)

    def _finish_commit(self, entry: CstEntry) -> None:
        """All acks in: release the group and route any recalls (Fig. 5b)."""
        if self.obs.enabled:
            self.obs.commit_finished(self.sim.now, self.dir_id, entry.cid)
        members = [d for d in entry.order if d != self.dir_id]
        if members:
            self.network.multicast(
                MessageType.COMMIT_DONE, self.node,
                [dir_node(d) for d in members], ctag=entry.cid,
                recalls=list(entry.recalls))
        self._deallocate_after_commit(entry, entry.recalls)

    def _on_commit_done(self, msg: Message) -> None:
        entry = self.cst.pop(msg.ctag, None)
        if entry is None:
            return
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id, len(self.cst))
        self._release_reservation(entry.cid)
        for recall in msg.payload.get("recalls", ()):
            if recall.get("collision_dir") == self.dir_id:
                self._handle_recall(recall["failed_cid"])

    def _deallocate_after_commit(self, entry: CstEntry, recalls) -> None:
        self.cst.pop(entry.cid, None)
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id, len(self.cst))
        self._release_reservation(entry.cid)
        for recall in recalls:
            if recall.get("collision_dir") == self.dir_id:
                self._handle_recall(recall["failed_cid"])

    def _release_reservation(self, cid: CommitId) -> None:
        ident = _identity(cid)
        if self.reserved_for == ident:
            self.reserved_for = None
        self.fail_counts.pop(ident, None)

    # ------------------------------------------------------------------
    # Failure paths
    # ------------------------------------------------------------------
    def _fail_group(self, entry: CstEntry, genuine: bool = True) -> None:
        """This module is the Collision module for ``entry``'s group.

        ``genuine`` distinguishes real collisions (which every member
        counts toward the starvation threshold) from reservation-induced
        deferrals (which must not, or reservations would feed each other
        into machine-wide gridlock).
        """
        self.groups_failed += 1
        cid = entry.cid
        if self.obs.enabled:
            self.obs.group_failed(self.sim.now, self.dir_id, cid, entry.proc,
                                  genuine, entry.leader_here)
        self.cst.pop(cid, None)
        self.failed_cids.add(cid)
        # A pending OCI watch for a now-failed cid can never fire again
        # (failed_cids gates every later arrival): drop it here instead of
        # letting it accumulate for the rest of the run.
        self.recall_watch.discard(cid)
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id, len(self.cst))
        if genuine:
            self._note_failure(cid)
        members = [d for d in entry.order if d != self.dir_id]
        if members:
            self.network.multicast(
                MessageType.G_FAILURE, self.node,
                [dir_node(d) for d in members], ctag=cid, genuine=genuine)
        if entry.leader_here:
            # Table 4: the collision module is the leader itself.
            self.network.unicast(
                MessageType.COMMIT_FAILURE, self.node,
                core_node(entry.proc), ctag=cid)

    def _on_g_failure(self, msg: Message) -> None:
        cid: CommitId = msg.ctag
        self.failed_cids.add(cid)
        self.recall_watch.discard(cid)
        if msg.payload.get("genuine", True):
            self._note_failure(cid)
        entry = self.cst.pop(cid, None)
        if self.obs.enabled:
            self.obs.dir_occupancy(self.sim.now, self.dir_id, len(self.cst))
        if entry is not None and entry.leader_here and entry.got_request:
            self.network.unicast(
                MessageType.COMMIT_FAILURE, self.node,
                core_node(entry.proc), ctag=cid)

    def _note_failure(self, cid: CommitId) -> None:
        """Starvation bookkeeping: every member sees every squash."""
        ident = _identity(cid)
        count = self.fail_counts.get(ident, 0) + 1
        self.fail_counts[ident] = count
        max_squashes = self.config.starvation_max_squashes
        if count >= max_squashes and self.reserved_for is None:
            self.reserved_for = ident
            self.protocol.stats.reservations += 1
        elif ident == self.reserved_for and count >= 3 * max_squashes:
            # The reserved chunk keeps losing at *other* (also reserved)
            # modules: release so that cross-reserved groups cannot block
            # each other forever.  (The paper assumes all members reserve
            # for the same chunk; with several starving chunks sharing
            # modules this back-off restores progress.)
            self.reserved_for = None
            self.fail_counts[ident] = 0

    # ------------------------------------------------------------------
    # OCI commit recall (Section 3.4)
    # ------------------------------------------------------------------
    def _handle_recall(self, failed_cid: CommitId) -> None:
        self.protocol.stats.commit_recalls += 1
        if failed_cid in self.failed_cids:
            return  # g_failure already sent; discard the recall
        entry = self.cst.get(failed_cid)
        if entry is not None and entry.ready() and not entry.held:
            self._fail_group(entry)
        elif entry is not None and entry.held:
            # Should be unreachable: the winner held every common module,
            # so the loser cannot be held here.  Fail it defensively.
            self._fail_group(entry)
        else:
            # Be on the lookout: fail the group when its messages assemble.
            self.recall_watch.add(failed_cid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ScalableBulkDirectory(id={self.dir_id}, "
                f"cst={len(self.cst)}, reserved={self.reserved_for})")


#: The conversation this engine implements (paper Table 1), checked
#: against the extracted flow automaton by `repro lint --flows` (SB6xx).
#: COMMIT_RECALL carries no edge: it is piggy-backed (PIGGYBACKED_TYPES).
PROTOCOL_SPEC = ProtocolSpec(
    family="scalablebulk",
    edges=(
        ("core", "COMMIT_REQUEST", "dir"),
        ("dir", "G", "dir"),
        ("dir", "G_SUCCESS", "dir"),
        ("dir", "G_FAILURE", "dir"),
        ("dir", "COMMIT_SUCCESS", "core"),
        ("dir", "COMMIT_FAILURE", "core"),
        ("dir", "BULK_INV", "core"),
        ("core", "BULK_INV_ACK", "dir"),
        ("core", "BULK_INV_NACK", "dir"),
        ("dir", "COMMIT_DONE", "dir"),
    ),
    replies={
        "COMMIT_REQUEST": ("COMMIT_SUCCESS", "COMMIT_FAILURE"),
        "G": ("G_SUCCESS", "G_FAILURE"),
        "BULK_INV": ("BULK_INV_ACK", "BULK_INV_NACK"),
    },
    retries=("BULK_INV_NACK",),
)

__all__ = ["PROTOCOL_SPEC", "ScalableBulkDirectory"]
