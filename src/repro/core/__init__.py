"""ScalableBulk: the paper's contribution.

The protocol extends BulkSC to distributed directories with three generic
primitives (Section 3):

1. **Preventing access to a set of directory entries** — each directory
   module holds the W signatures of the chunks committing through it and
   nacks only overlapping loads/commits (:class:`ScalableBulkDirectory`).
2. **Grouping directory modules** — the Group Formation protocol: a `g`
   (grab) message circulates from the leader through the participating
   modules in priority order, accumulating the invalidation vector;
   collisions between incompatible groups resolve at the lowest common
   module, and at least one colliding group always forms
   (:mod:`repro.core.group`, :mod:`repro.core.directory_engine`).
3. **Optimistic Commit Initiation** — a committing processor keeps
   consuming bulk invalidations; if one kills its in-flight chunk, a
   `commit recall` rides the ack and the commit-done multicast to the
   collision module (:class:`ScalableBulkEngine`).
"""

from repro.core.cst import ChunkCommitState, CstEntry
from repro.core.group import collision_module, order_gvec, successor
from repro.core.directory_engine import ScalableBulkDirectory
from repro.core.processor_engine import ScalableBulkEngine
from repro.core.protocol import ScalableBulkProtocol

__all__ = [
    "ChunkCommitState",
    "CstEntry",
    "ScalableBulkDirectory",
    "ScalableBulkEngine",
    "ScalableBulkProtocol",
    "collision_module",
    "order_gvec",
    "successor",
]
