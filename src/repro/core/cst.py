"""The Chunk State Table (CST) of a ScalableBulk directory module (Fig. 6).

One entry per committing or pending chunk, holding the chunk's tag and
signatures, the group vector (``g_vec``), the accumulated invalidation
vector (``inval_vec``), the chunk's protocol state, and the three status
bits the paper names: ``l`` (leader), ``h`` (hold — admitted into the
group, set right before forwarding ``g``) and ``c`` (confirmed — group
successfully formed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.signatures.bulk_signature import BulkSignature

#: A commit instance: (chunk tag, retry attempt number).  Retries after a
#: group-formation failure are distinct protocol conversations.
CommitId = Tuple[object, int]


class ChunkCommitState(enum.Enum):
    PENDING = "pending"      #: waiting for (R,W) and/or g
    HELD = "held"            #: admitted; g forwarded (h bit set)
    CONFIRMED = "confirmed"  #: group formed (c bit set)


@dataclass
class CstEntry:
    """One CST row."""

    cid: CommitId
    dir_id: int

    # filled by the commit_request message
    proc: int = -1
    r_sig: Optional[BulkSignature] = None
    w_sig: Optional[BulkSignature] = None
    order: Tuple[int, ...] = ()            #: the shipped g_vec traversal order
    write_lines: frozenset = frozenset()   #: chunk's full write-set (lines)

    # local state
    state: ChunkCommitState = ChunkCommitState.PENDING
    got_request: bool = False
    expanded: bool = False                 #: W expanded against local lines
    got_g: bool = False
    local_write_lines: List[int] = field(default_factory=list)
    local_sharers: Set[int] = field(default_factory=set)
    inval_acc: Set[int] = field(default_factory=set)  #: accumulated inval_vec

    # leader-only completion tracking
    acks_expected: int = 0
    acks_received: int = 0
    recalls: List[dict] = field(default_factory=list)
    bulk_inv_payload: Optional[dict] = None  #: for conservative-nack retries
    nack_retries: int = 0                    #: jitter counter for those retries

    # ------------------------------------------------------------------
    @property
    def tag(self) -> object:
        return self.cid[0]

    @property
    def leader_here(self) -> bool:
        """The paper's ``l`` bit."""
        return bool(self.order) and self.order[0] == self.dir_id

    @property
    def held(self) -> bool:
        """The paper's ``h`` bit."""
        return self.state in (ChunkCommitState.HELD, ChunkCommitState.CONFIRMED)

    @property
    def confirmed(self) -> bool:
        """The paper's ``c`` bit."""
        return self.state is ChunkCommitState.CONFIRMED

    def ready(self) -> bool:
        """Has this module seen everything needed to advance this chunk?

        The leader is ready once it has the signature pair (expanded); a
        non-leader additionally needs the ``g`` from its predecessor.
        """
        if not (self.got_request and self.expanded):
            return False
        return self.leader_here or self.got_g

    def incompatible_with(self, other: "CstEntry") -> bool:
        """Section 3.2.1: two groups are incompatible when their W
        signatures overlap or the R of one overlaps the W of the other.

        The test works the way the directory hardware does after W
        expansion: each *expanded written line* of one chunk probes the
        other chunk's signatures (per-line membership, low false-positive
        rate), rather than a whole-signature AND (which saturates at
        realistic densities).
        """
        if self.w_sig is None or other.w_sig is None:
            return False
        for line in self.write_lines:
            if other.w_sig.contains(line) or other.r_sig.contains(line):
                return True
        for line in other.write_lines:
            if self.r_sig.contains(line) or self.w_sig.contains(line):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = f"l={int(self.leader_here)},h={int(self.held)},c={int(self.confirmed)}"
        return f"CstEntry({self.cid}, {self.state.value}, {bits})"


__all__ = ["ChunkCommitState", "CommitId", "CstEntry"]
