"""ScalableBulk per-processor engine: commit requests, OCI, commit recall.

With Optimistic Commit Initiation (Section 3.3) the processor keeps
consuming incoming bulk invalidations while its own commit request is in
flight.  If an invalidation kills the in-flight chunk, the engine squashes
it immediately and piggy-backs a *commit recall* — naming the collision
module of its failed group — on the invalidation ack (Figure 4(d)); the
eventual ``commit_failure`` for the dead chunk is discarded.

With OCI disabled (the conservative BulkSC-style behaviour of Figure 4(c))
the processor nacks bulk invalidations while it awaits its commit outcome;
the winner's leader retries the invalidation until it is consumed.

One corner the paper does not spell out: a bulk invalidation can hit the
in-flight chunk purely through signature aliasing, with the two groups
sharing *no* directory module — then there is no collision module to
recall through, but also no true conflict (a real conflict implies a
common home directory).  The engine marks the chunk *squash-pending* and
resolves on the commit outcome: success means the chunks really were
disjoint (commit stands); failure finalizes the squash.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.cst import CommitId
from repro.core.group import collision_module, order_gvec
from repro.cpu.chunk import Chunk, ChunkState
from repro.network.message import Message, MessageType, dir_node
from repro.protocols.base import ProcessorEngine


class ScalableBulkEngine(ProcessorEngine):
    """Processor-side half of the ScalableBulk protocol."""

    def __init__(self, protocol, core) -> None:
        super().__init__(protocol, core)
        self._current_cid: Optional[CommitId] = None
        self._current_chunk: Optional[Chunk] = None
        self._pending_squash_lines: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Commit request
    # ------------------------------------------------------------------
    def send_commit_request(self, chunk: Chunk) -> None:
        cid: CommitId = (chunk.tag, chunk.commit_failures)
        self._current_cid = cid
        self._current_chunk = chunk
        order = order_gvec(chunk.dirs, self.config.n_directories,
                           self.protocol.priority_offset())
        chunk.commit_order = order  # stashed for recall computation
        write_lines = frozenset(chunk.write_lines)
        for d in order:
            self.network.unicast(
                MessageType.COMMIT_REQUEST, self.node, dir_node(d), ctag=cid,
                proc=self.core.core_id, r_sig=chunk.r_sig, w_sig=chunk.w_sig,
                order=order, write_lines=write_lines,
            )

    @property
    def awaiting_outcome(self) -> bool:
        return self._current_cid is not None

    def _clear_current(self) -> None:
        self._current_cid = None
        self._current_chunk = None
        self._pending_squash_lines = None

    # ------------------------------------------------------------------
    # Protocol messages
    # ------------------------------------------------------------------
    def handle_protocol_message(self, msg: Message) -> None:
        mtype = msg.mtype
        if mtype is MessageType.COMMIT_SUCCESS:
            self._on_commit_success(msg)
        elif mtype is MessageType.COMMIT_FAILURE:
            self._on_commit_failure(msg)
        elif mtype is MessageType.BULK_INV:
            self._on_bulk_inv(msg)
        else:
            raise NotImplementedError(f"unexpected {mtype} at processor")

    def _on_commit_success(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            return  # stale (e.g. success raced a recall-squash)
        chunk = self._current_chunk
        if chunk.squash_pending:
            # Aliasing with no common directory: the sets were truly
            # disjoint and the commit stands; the provisional squash dies.
            chunk.squash_pending = False
        self._clear_current()
        self.finish_commit_success(chunk)

    def _on_commit_failure(self, msg: Message) -> None:
        if msg.ctag != self._current_cid:
            return  # OCI: failure for an already-recalled chunk — discard
        chunk = self._current_chunk
        self._clear_current()
        if chunk.state is not ChunkState.COMMITTING:
            return
        if chunk.squash_pending:
            # Deferred (aliasing) squash becomes final.
            chunk.squash_pending = False
            self.stats.attempt_finished(msg.ctag, success=False)
            self.squash(chunk, self._pending_lines_or_empty())
            return
        self.retry_commit_later(chunk)

    def _pending_lines_or_empty(self) -> Set[int]:
        return self._pending_squash_lines or set()

    # ------------------------------------------------------------------
    # Bulk invalidation: cache kill + chunk disambiguation (+ OCI)
    # ------------------------------------------------------------------
    def _on_bulk_inv(self, msg: Message) -> None:
        leader = msg.payload["leader"]
        if not self.config.oci and self.awaiting_outcome:
            # Conservative protocol (Fig. 4(c)): bounce until our own
            # commit outcome arrives.
            self.network.unicast(
                MessageType.BULK_INV_NACK, self.node, dir_node(leader),
                ctag=msg.ctag, proc=self.core.core_id)
            return

        w_sig = msg.payload["w_sig"]
        write_lines: Set[int] = set(msg.payload["write_lines"])
        winner_order = msg.payload["winner_order"]
        self.core.apply_invalidation(write_lines)

        recall = None
        victim = self.find_inv_conflict(write_lines)
        if victim is not None:
            head = self._current_chunk
            if head is not None and victim is head and self.awaiting_outcome:
                recall = self._squash_in_flight(head, write_lines, winner_order)
            else:
                self.squash(victim, write_lines)

        self.network.unicast(
            MessageType.BULK_INV_ACK, self.node, dir_node(leader),
            ctag=msg.ctag, recall=recall)

    def _squash_in_flight(self, head: Chunk, write_lines: Set[int],
                          winner_order) -> Optional[dict]:
        """OCI: the invalidation killed the chunk we are committing."""
        failed_cid = self._current_cid
        coll = collision_module(head.commit_order, winner_order)
        if coll is None:
            # No common module: defer (see module docstring).
            head.squash_pending = True
            self._pending_squash_lines = set(write_lines)
            self._check_younger_conflicts(write_lines)
            return None
        if self.obs.enabled:
            self.obs.oci_recall(self.sim.now, self.core.core_id,
                                failed_cid, coll)
        self.stats.attempt_finished(failed_cid, success=False)
        self.squash(head, write_lines)
        self._clear_current()
        return {"failed_cid": failed_cid, "collision_dir": coll}

    def _check_younger_conflicts(self, write_lines: Set[int]) -> None:
        """While the head squash is pending, younger chunks still squash."""
        for chunk in self.core.active_chunks()[1:]:
            if chunk.hit_by_invalidation(write_lines):
                self.squash(chunk, write_lines)
                return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ScalableBulkEngine(core={self.core.core_id}, "
                f"inflight={self._current_cid})")


__all__ = ["ScalableBulkEngine"]
