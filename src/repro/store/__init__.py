"""Persistent experiment service: result store, campaigns, dashboards.

The :mod:`repro.store` package turns one-shot harness runs into a
durable service around a schema-versioned SQLite database:

* :mod:`repro.store.db` — the ``repro-store-v1`` result store, keyed by
  ``(kind, config_hash, seed, git_rev, cell_key)``;
* :mod:`repro.store.ingest` — adapters for every artifact the harness
  writes (benchmark documents, sweep caches, chaos artifacts, profile
  reports), each with a lossless export;
* :mod:`repro.store.campaign` — the resumable campaign runner
  (declarative matrix, dedupe by cache key, per-cell transactional
  checkpoints, failures as first-class rows);
* :mod:`repro.store.query` — cross-revision trends and the generalized
  regression gate;
* :mod:`repro.store.dashboard` — the static HTML trend dashboard.

CLI: ``python -m repro store {ingest,campaign,query,check,dashboard,
export,info}`` (see :mod:`repro.store.cli` and docs/experiments.md).
"""

from repro.store.campaign import (CampaignCell, CampaignReport,
                                  CampaignSpec, QUICK_SPEC, expand,
                                  run_campaign)
from repro.store.db import ResultStore, StoreError, StoreSchemaError
from repro.store.ingest import (detect_kind, export_bench, export_sweep,
                                ingest_bench, ingest_chaos_artifact,
                                ingest_path, ingest_profile, ingest_sweep,
                                sweep_metrics)
from repro.store.query import (Regression, TrendPoint, check_regressions,
                               trend, trends_by_series)
from repro.store.schema import (KIND_BENCH_MACRO, KIND_BENCH_META,
                                KIND_BENCH_MICRO, KIND_CHAOS, KIND_PROFILE,
                                KIND_SWEEP, KINDS, Record, SCHEMA,
                                STATUS_FAILED, STATUS_OK)

__all__ = [
    "CampaignCell", "CampaignReport", "CampaignSpec", "QUICK_SPEC",
    "KIND_BENCH_MACRO", "KIND_BENCH_META", "KIND_BENCH_MICRO",
    "KIND_CHAOS", "KIND_PROFILE", "KIND_SWEEP", "KINDS",
    "Record", "Regression", "ResultStore", "SCHEMA", "STATUS_FAILED",
    "STATUS_OK", "StoreError", "StoreSchemaError", "TrendPoint",
    "check_regressions", "detect_kind", "expand", "export_bench",
    "export_sweep", "ingest_bench", "ingest_chaos_artifact", "ingest_path",
    "ingest_profile", "ingest_sweep", "run_campaign", "sweep_metrics",
    "trend", "trends_by_series",
]
