"""Query layer: filters, cross-revision trends, regression gating.

The store keeps one row per (cell, revision); this module turns those
rows into the two shapes the service consumers need:

* :func:`trend` / :func:`trends_by_series` — a metric's value per
  ``git_rev`` in first-seen revision order, grouped by the stable
  ``series`` identity (the sweep key, the micro bench name, the macro
  ``app/cores/protocol`` cell);
* :func:`check_regressions` — ``bench --check-regression`` generalized
  to *any stored metric across the last N revisions*: the latest
  revision's value is compared against the best value the window holds,
  with the same calibration normalization the bench harness applies
  (records that carry a ``calibration`` metric are divided by it, which
  cancels raw host speed to first order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.store.db import ResultStore
from repro.store.schema import STATUS_OK

#: metrics where smaller is better; everything else is higher-is-better.
LOWER_IS_BETTER = frozenset({
    "mean_commit_latency", "wall_seconds", "seconds", "squash_rate",
    "mean_queue", "violations", "wall_ns",
})


@dataclass(frozen=True)
class TrendPoint:
    """One (revision, value) sample of a series."""

    git_rev: str
    value: float
    n_samples: int = 1


def metric_lower_is_better(metric: str) -> bool:
    return metric in LOWER_IS_BETTER or metric.startswith("share/")


def _value_of(record, metric: str, normalize: bool) -> Optional[float]:
    value = record.metric(metric)
    if value is None:
        return None
    if normalize and metric != "calibration":
        cal = record.metric("calibration")
        if cal:
            return value / cal
    return value


def trend(store: ResultStore, kind: str, metric: str, *,
          series: Optional[str] = None,
          app: Optional[str] = None,
          protocol: Optional[str] = None,
          n_cores: Optional[int] = None,
          last: Optional[int] = None,
          normalize: bool = False) -> List[TrendPoint]:
    """One series' metric per revision, oldest first.

    Multiple rows of the same series at one revision (e.g. several cells
    matching an ``app`` filter) average into one point.  ``last`` keeps
    only the newest N revisions; ``normalize`` divides by each record's
    ``calibration`` metric when present.
    """
    rows = [r for r in store.query(kind, series=series, app=app,
                                   protocol=protocol, n_cores=n_cores,
                                   status=STATUS_OK)]
    order = store.revisions(kind)
    by_rev: Dict[str, List[float]] = {}
    for record in rows:
        value = _value_of(record, metric, normalize)
        if value is not None:
            by_rev.setdefault(record.git_rev, []).append(value)
    points = [TrendPoint(rev, sum(vals) / len(vals), len(vals))
              for rev in order if (vals := by_rev.get(rev))]
    if last is not None:
        points = points[-last:]
    return points


def trends_by_series(store: ResultStore, kind: str, metric: str, *,
                     last: Optional[int] = None,
                     normalize: bool = False
                     ) -> Dict[str, List[TrendPoint]]:
    """Every series of ``kind`` that exposes ``metric``, as trends."""
    names = sorted({r.series for r in store.query(kind, status=STATUS_OK)})
    out: Dict[str, List[TrendPoint]] = {}
    for name in names:
        points = trend(store, kind, metric, series=name, last=last,
                       normalize=normalize)
        if points:
            out[name] = points
    return out


@dataclass(frozen=True)
class Regression:
    """One series whose latest revision is worse than the window's best."""

    kind: str
    series: str
    metric: str
    baseline_rev: str
    baseline: float
    latest_rev: str
    latest: float

    @property
    def drop_pct(self) -> float:
        if self.baseline == 0:
            return 0.0
        return abs(100.0 * (self.latest - self.baseline) / self.baseline)

    def render(self) -> str:
        return (f"{self.kind}/{self.series} {self.metric}: "
                f"{self.drop_pct:.1f}% worse than rev {self.baseline_rev} "
                f"({self.baseline:.4g} -> {self.latest:.4g} "
                f"at rev {self.latest_rev or '<none>'})")


def check_regressions(store: ResultStore, kind: str, metric: str, *,
                      threshold: float = 0.10, last: int = 5,
                      lower_better: Optional[bool] = None,
                      normalize: bool = True) -> List[Regression]:
    """Gate the newest revision of every series against the window's best.

    For each series with at least two revisions among the last ``last``,
    the newest value is compared to the best older value (max for
    higher-is-better metrics, min for lower-is-better); a relative
    slip beyond ``threshold`` is a regression.  Series with a single
    revision pass vacuously — a fresh store never gates.
    """
    if lower_better is None:
        lower_better = metric_lower_is_better(metric)
    out: List[Regression] = []
    for name, points in trends_by_series(store, kind, metric, last=last,
                                         normalize=normalize).items():
        if len(points) < 2:
            continue
        latest = points[-1]
        prior = points[:-1]
        best = min(prior, key=lambda p: p.value) if lower_better \
            else max(prior, key=lambda p: p.value)
        if best.value == 0:
            continue
        slip = ((latest.value - best.value) if lower_better
                else (best.value - latest.value)) / abs(best.value)
        if slip > threshold:
            out.append(Regression(kind=kind, series=name, metric=metric,
                                  baseline_rev=best.git_rev,
                                  baseline=best.value,
                                  latest_rev=latest.git_rev,
                                  latest=latest.value))
    return out


__all__ = ["LOWER_IS_BETTER", "Regression", "TrendPoint",
           "check_regressions", "metric_lower_is_better", "trend",
           "trends_by_series"]
