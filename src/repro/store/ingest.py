"""Ingestion adapters: existing result documents -> store rows.

Adapters exist for every artifact the harness already writes:

* ``BENCH_*.json`` (``repro-bench-v1``) — one ``bench_meta`` header row
  plus one row per micro measurement and per macro cell;
* ``results/sweep.json`` sweep caches — one ``sweep`` row per matrix cell;
* chaos failure artifacts (``repro chaos --artifacts``) — one ``chaos``
  row per artifact;
* host-profiler reports (``repro profile --json``) — one ``profile`` row.

Every adapter stores the complete original record in ``payload``, so the
matching ``export_*`` function reconstructs the source document exactly
(asserted byte-identical, modulo key order, by the round-trip tests).
Ingest is idempotent: re-reading the same file replaces the same rows.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.store.db import ResultStore, StoreError
from repro.store.schema import (KIND_BENCH_MACRO, KIND_BENCH_META,
                                KIND_BENCH_MICRO, KIND_CHAOS, KIND_PROFILE,
                                KIND_SWEEP, Record, STATUS_FAILED, STATUS_OK)

PathLike = Union[str, Path]


def _doc_id(doc: Any) -> str:
    """Content fingerprint that namespaces one document's cell rows.

    Two benchmark documents from the same day and revision (e.g. CI's
    profiled + unprofiled captures) must not collide, so cell keys are
    prefixed with a hash of the full document.
    """
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]


# ----------------------------------------------------------------------
# Benchmark documents (repro-bench-v1)
# ----------------------------------------------------------------------
def ingest_bench(store: ResultStore, doc: Dict[str, Any],
                 source: str = "") -> List[Record]:
    """One ``repro-bench-v1`` document -> meta + micro + macro rows."""
    rev = doc.get("git_rev") or ""
    date = str(doc.get("date", ""))
    cal = doc.get("calibration_ops_per_sec")
    doc_id = _doc_id(doc)
    prefix = f"{date}.{doc_id}"
    records: List[Record] = []

    header = {k: v for k, v in doc.items() if k not in ("micro", "macro")}
    records.append(Record(
        kind=KIND_BENCH_META, cell_key=prefix, series="bench_doc",
        git_rev=rev, payload=header, source=source,
        metrics={"calibration_ops_per_sec": cal}
        if isinstance(cal, (int, float)) else {}))

    for name, rec in doc.get("micro", {}).items():
        metrics: Dict[str, Any] = {}
        for field in ("ops", "seconds", "ops_per_sec"):
            if isinstance(rec.get(field), (int, float)):
                metrics[field] = rec[field]
        if isinstance(cal, (int, float)):
            metrics["calibration"] = cal
        records.append(Record(
            kind=KIND_BENCH_MICRO, cell_key=f"{prefix}/{name}",
            series=name, git_rev=rev, metrics=metrics, payload=rec,
            source=source))

    for key, rec in doc.get("macro", {}).items():
        metrics = {}
        for field in ("cycles_per_sec", "total_cycles", "wall_seconds",
                      "chunks_committed"):
            if isinstance(rec.get(field), (int, float)):
                metrics[field] = rec[field]
        if isinstance(cal, (int, float)):
            metrics["calibration"] = cal
        records.append(Record(
            kind=KIND_BENCH_MACRO, cell_key=f"{prefix}/{key}", series=key,
            config_hash=str(rec.get("config_hash", "")), git_rev=rev,
            app=str(rec.get("app", "")),
            protocol=str(rec.get("protocol", "")),
            n_cores=int(rec.get("n_cores", 0)),
            metrics=metrics, payload=rec, source=source))

    store.put_many(records)
    return records


def export_bench(store: ResultStore,
                 doc_prefix: Optional[str] = None) -> Dict[str, Any]:
    """Reassemble one ingested benchmark document from its rows.

    ``doc_prefix`` selects the document (the ``date.docid`` cell-key
    prefix of its ``bench_meta`` row); by default the most recently
    ingested one is exported.
    """
    metas = store.query(KIND_BENCH_META)
    if doc_prefix is not None:
        metas = [m for m in metas if m.cell_key == doc_prefix]
    if not metas:
        raise StoreError("no benchmark document found in the store")
    meta = metas[-1]
    doc = dict(meta.payload)
    prefix = meta.cell_key + "/"
    doc["micro"] = {
        r.cell_key[len(prefix):]: r.payload
        for r in store.query(KIND_BENCH_MICRO)
        if r.cell_key.startswith(prefix)}
    doc["macro"] = {
        r.cell_key[len(prefix):]: r.payload
        for r in store.query(KIND_BENCH_MACRO)
        if r.cell_key.startswith(prefix)}
    return doc


# ----------------------------------------------------------------------
# Sweep caches
# ----------------------------------------------------------------------
def sweep_metrics(rec: Dict[str, Any]) -> Dict[str, Any]:
    """The scalar metrics a sweep cell exposes to queries and trends."""
    wall = rec.get("wall_seconds_raw", rec.get("wall_seconds", 0)) or 0
    chunks = rec.get("chunks_committed", 0) or 0
    squashes = (rec.get("squashes_conflict", 0) or 0) \
        + (rec.get("squashes_alias", 0) or 0)
    metrics: Dict[str, Any] = {}
    for field in ("total_cycles", "mean_commit_latency", "mean_dirs",
                  "chunks_committed", "mean_queue", "bottleneck_ratio"):
        if isinstance(rec.get(field), (int, float)):
            metrics[field] = rec[field]
    if wall > 0 and isinstance(rec.get("total_cycles"), (int, float)):
        metrics["cycles_per_sec"] = rec["total_cycles"] / wall
    metrics["squash_rate"] = squashes / chunks if chunks else 0.0
    return metrics


def ingest_sweep(store: ResultStore, records: Dict[str, Dict[str, Any]],
                 source: str = "",
                 git_rev: Optional[str] = None) -> List[Record]:
    """A sweep cache (``{cell key: record}``) -> one ``sweep`` row each.

    ``git_rev`` stamps rows whose records predate per-record provenance;
    it defaults to the current checkout's revision (best effort).
    """
    if git_rev is None:
        from repro.provenance import git_rev as current_rev
        git_rev = current_rev() or ""
    out: List[Record] = []
    for key, rec in records.items():
        parts = key.split("/")
        app = parts[0] if parts else ""
        n_cores = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
        protocol = parts[2] if len(parts) > 2 else ""
        out.append(Record(
            kind=KIND_SWEEP, cell_key=key, series=key,
            config_hash=str(rec.get("config_hash", "")),
            seed=int(rec.get("seed", 0)), git_rev=git_rev,
            app=app, protocol=str(rec.get("protocol", protocol)),
            n_cores=n_cores, metrics=sweep_metrics(rec), payload=rec,
            source=source))
    store.put_many(out)
    return out


def export_sweep(store: ResultStore, git_rev: Optional[str] = None,
                 source: Optional[str] = None) -> Dict[str, Dict[str, Any]]:
    """Reassemble a sweep cache from ``sweep`` rows (lossless)."""
    rows = store.query(KIND_SWEEP, git_rev=git_rev, source=source)
    return {r.cell_key: r.payload for r in rows}


# ----------------------------------------------------------------------
# Chaos artifacts
# ----------------------------------------------------------------------
def ingest_chaos_artifact(store: ResultStore, doc: Dict[str, Any],
                          source: str = "") -> List[Record]:
    """One replayable chaos failure artifact -> one ``chaos`` row."""
    scenario = doc.get("scenario", {}) or {}
    plan = doc.get("plan", {}) or {}
    stats = doc.get("stats", {}) or {}
    violations = doc.get("violations", []) or []
    name = f"{scenario.get('name', 'scenario')}/{plan.get('name', 'plan')}"
    from repro.provenance import git_rev as current_rev
    record = Record(
        kind=KIND_CHAOS, cell_key=name, series=name,
        seed=int(plan.get("seed", 0)), git_rev=current_rev() or "",
        protocol=str(scenario.get("protocol", "")),
        n_cores=int(scenario.get("n_cores", 0) or 0),
        status=STATUS_FAILED if violations else STATUS_OK,
        metrics={"cycles": stats.get("cycles", 0),
                 "commits": stats.get("commits", 0),
                 "violations": len(violations),
                 "n_faults": len(plan.get("faults", ()) or ())},
        payload=doc, source=source,
        error="/".join(sorted({str(v.get("code", "?"))
                               for v in violations})))
    store.put(record)
    return [record]


# ----------------------------------------------------------------------
# Profile reports
# ----------------------------------------------------------------------
def ingest_profile(store: ResultStore, doc: Dict[str, Any],
                   source: str = "") -> List[Record]:
    """One host-profiler attribution report -> one ``profile`` row."""
    shares = doc.get("shares", {}) or {}
    metrics: Dict[str, Any] = {
        f"share/{name}": value for name, value in shares.items()
        if isinstance(value, (int, float))}
    if isinstance(doc.get("wall_ns"), (int, float)):
        metrics["wall_ns"] = doc["wall_ns"]
    record = Record(
        kind=KIND_PROFILE, cell_key=f"profile/{_doc_id(doc)}",
        series="profile", config_hash=str(doc.get("config_hash", "")),
        git_rev=doc.get("git_rev") or "", metrics=metrics, payload=doc,
        source=source)
    store.put(record)
    return [record]


# ----------------------------------------------------------------------
# Autodetection
# ----------------------------------------------------------------------
def detect_kind(doc: Any) -> str:
    """Classify a loaded JSON document by shape."""
    if isinstance(doc, dict):
        if doc.get("schema") == "repro-bench-v1":
            return "bench"
        if "plan" in doc and "scenario" in doc and "version" in doc:
            return "chaos"
        if "shares" in doc and "scopes" in doc:
            return "profile"
        if doc and all(isinstance(v, dict) and "total_cycles" in v
                       for v in doc.values()):
            return "sweep"
    raise StoreError(
        "unrecognized document shape (expected a repro-bench-v1 document, "
        "a sweep cache, a chaos artifact or a profile report)")


def ingest_path(store: ResultStore, path: PathLike,
                git_rev: Optional[str] = None) -> Tuple[str, int]:
    """Ingest one JSON artifact; returns ``(detected kind, rows written)``."""
    path = Path(path)
    doc = json.loads(path.read_text())
    kind = detect_kind(doc)
    source = str(path)
    if kind == "bench":
        rows = ingest_bench(store, doc, source)
    elif kind == "sweep":
        rows = ingest_sweep(store, doc, source, git_rev=git_rev)
    elif kind == "chaos":
        rows = ingest_chaos_artifact(store, doc, source)
    else:
        rows = ingest_profile(store, doc, source)
    return kind, len(rows)


__all__ = ["detect_kind", "export_bench", "export_sweep", "ingest_bench",
           "ingest_chaos_artifact", "ingest_path", "ingest_profile",
           "ingest_sweep", "sweep_metrics"]
