"""SQLite-backed result store with transactional, crash-safe writes.

:class:`ResultStore` is the one place result rows enter or leave disk.
Design points:

* **Schema versioning.**  A fresh database is stamped
  ``meta.schema = repro-store-v1``; opening a store written by a
  different schema raises :class:`StoreSchemaError` instead of silently
  misreading rows.
* **Transactional checkpoints.**  Every :meth:`put` is its own
  ``BEGIN IMMEDIATE … COMMIT``, so a SIGKILL between cells loses at most
  the one in-flight row and never corrupts the file — the property the
  campaign runner's resume test asserts with ``PRAGMA integrity_check``.
* **Upsert by cache key.**  Rows are ``INSERT OR REPLACE``\\ d on
  ``(kind, config_hash, seed, git_rev, cell_key)``: re-ingesting a
  document is idempotent, while new revisions accumulate as new rows.
"""

from __future__ import annotations

import datetime
import sqlite3
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.store.schema import DDL, ROW_COLUMNS, Record, SCHEMA

PathLike = Union[str, Path]


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class StoreSchemaError(StoreError):
    """The on-disk database was written by an incompatible schema."""


def _now() -> str:
    """Wall-clock ingest stamp (provenance only, never load-bearing)."""
    return datetime.datetime.now(  # repro: allow SB304
        datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


class ResultStore:
    """One SQLite result database (creating it on first open)."""

    def __init__(self, path: PathLike, *, create: bool = True) -> None:
        self.path = Path(path)
        if not create and not self.path.exists():
            raise StoreError(f"result store {self.path} does not exist")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        # isolation_level=None: we manage transactions explicitly so a
        # put() is exactly one BEGIN IMMEDIATE … COMMIT on disk.
        self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        if fresh:
            self._create()
        self._check_schema()

    # -- lifecycle ------------------------------------------------------
    def _create(self) -> None:
        cur = self._conn
        cur.execute("BEGIN IMMEDIATE")
        try:
            for stmt in DDL:
                cur.execute(stmt)
            cur.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema", SCHEMA))
            cur.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("created_at", _now()))
            cur.execute("COMMIT")
        except BaseException:
            cur.execute("ROLLBACK")
            raise

    def _check_schema(self) -> None:
        try:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'").fetchone()
        except sqlite3.DatabaseError as err:
            raise StoreSchemaError(
                f"{self.path} is not a repro result store: {err}") from err
        if row is None or row[0] != SCHEMA:
            found = row[0] if row else "<missing>"
            raise StoreSchemaError(
                f"{self.path} carries schema {found!r}; this build reads "
                f"{SCHEMA!r}")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writes ---------------------------------------------------------
    def put(self, record: Record) -> None:
        """Upsert one row in its own transaction (crash-safe checkpoint)."""
        self.put_many([record])

    def put_many(self, records: Iterable[Record]) -> int:
        """Upsert a batch atomically; returns the number of rows written."""
        rows = []
        for record in records:
            if not record.created_at:
                record.created_at = _now()
            rows.append(record.to_row())
        if not rows:
            return 0
        cols = ", ".join(ROW_COLUMNS)
        marks = ", ".join("?" * len(ROW_COLUMNS))
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                f"INSERT OR REPLACE INTO records ({cols}) VALUES ({marks})",
                rows)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return len(rows)

    # -- reads ----------------------------------------------------------
    def status_of(self, kind: str, config_hash: str, seed: int,
                  git_rev: Optional[str], cell_key: str) -> Optional[str]:
        """The stored status of a cache key, or ``None`` when absent.

        ``git_rev=None`` matches any revision (the campaign runner's
        ``--ignore-rev`` dedupe).
        """
        sql = ("SELECT status FROM records WHERE kind = ? AND "
               "config_hash = ? AND seed = ? AND cell_key = ?")
        args: List[object] = [kind, config_hash, int(seed), cell_key]
        if git_rev is not None:
            sql += " AND git_rev = ?"
            args.append(git_rev)
        sql += " ORDER BY id DESC LIMIT 1"
        row = self._conn.execute(sql, args).fetchone()
        return row[0] if row is not None else None

    def query(self, kind: Optional[str] = None, *,
              app: Optional[str] = None,
              protocol: Optional[str] = None,
              n_cores: Optional[int] = None,
              git_rev: Optional[str] = None,
              series: Optional[str] = None,
              cell_key: Optional[str] = None,
              status: Optional[str] = None,
              source: Optional[str] = None,
              limit: Optional[int] = None) -> List[Record]:
        """Filtered rows in insertion (rowid) order."""
        clauses, args = [], []
        for column, value in (("kind", kind), ("app", app),
                              ("protocol", protocol), ("n_cores", n_cores),
                              ("git_rev", git_rev), ("series", series),
                              ("cell_key", cell_key), ("status", status),
                              ("source", source)):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        sql = "SELECT id, " + ", ".join(ROW_COLUMNS) + " FROM records"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        return [Record.from_row(row)
                for row in self._conn.execute(sql, args)]

    def revisions(self, kind: Optional[str] = None) -> List[str]:
        """Distinct ``git_rev`` values in first-seen order."""
        sql = "SELECT git_rev, MIN(id) AS first FROM records"
        args: List[object] = []
        if kind is not None:
            sql += " WHERE kind = ?"
            args.append(kind)
        sql += " GROUP BY git_rev ORDER BY first"
        return [row[0] for row in self._conn.execute(sql, args)]

    def counts(self) -> Dict[str, int]:
        """Row counts per kind."""
        return {row[0]: row[1] for row in self._conn.execute(
            "SELECT kind, COUNT(*) FROM records GROUP BY kind "
            "ORDER BY kind")}

    def integrity_check(self) -> str:
        """``PRAGMA integrity_check`` — 'ok' on a healthy database."""
        row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return str(row[0]) if row else "no result"

    def meta(self) -> Dict[str, str]:
        return {k: v for k, v in
                self._conn.execute("SELECT key, value FROM meta")}


__all__ = ["ResultStore", "StoreError", "StoreSchemaError"]
