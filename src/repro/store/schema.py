"""``repro-store-v1``: the persistent result store's record model.

One row per *result cell* — a sweep matrix cell, a micro/macro benchmark
measurement, a chaos plan verdict, a profile attribution capture, or a
benchmark document header.  Every row is keyed by the cache key

    (kind, config_hash, seed, git_rev, cell_key)

which extends the provenance join key PR 8 introduced
(``config_hash`` + ``git_rev``) with the record kind, the config's
reproducibility seed and a per-document cell discriminator, so

* re-running the same cell at the same revision *replaces* the row
  (idempotent ingest, campaign dedupe), while
* the same cell at a *new* revision adds a row — which is exactly what
  trend extraction and regression gating join across.

``payload`` always holds the complete original record as JSON, so every
ingested document can be re-exported losslessly; ``metrics`` is a flat
JSON object of scalar measurements extracted for querying, and
``series`` is the stable cross-revision identity of the cell (the sweep
key, the micro bench name, ``app/cores/protocol`` for macro cells) that
trends and the dashboard group by.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Schema identity; stored in the DB's ``meta`` table and checked on open.
SCHEMA = "repro-store-v1"

#: The record kinds the v1 schema defines.
KIND_SWEEP = "sweep"              #: one sweep/campaign matrix cell
KIND_BENCH_MICRO = "bench_micro"  #: one micro benchmark measurement
KIND_BENCH_MACRO = "bench_macro"  #: one macro benchmark cell
KIND_BENCH_META = "bench_meta"    #: one BENCH_*.json document header
KIND_CHAOS = "chaos"              #: one chaos plan verdict / artifact
KIND_PROFILE = "profile"          #: one host-profiler attribution report

KINDS = (KIND_SWEEP, KIND_BENCH_MICRO, KIND_BENCH_MACRO, KIND_BENCH_META,
         KIND_CHAOS, KIND_PROFILE)

#: Row statuses.  Failed campaign cells are first-class rows (exception +
#: traceback preserved), not aborted campaigns.
STATUS_OK = "ok"
STATUS_FAILED = "failed"

DDL = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS records (
        id          INTEGER PRIMARY KEY,
        kind        TEXT NOT NULL,
        config_hash TEXT NOT NULL DEFAULT '',
        seed        INTEGER NOT NULL DEFAULT 0,
        git_rev     TEXT NOT NULL DEFAULT '',
        cell_key    TEXT NOT NULL,
        series      TEXT NOT NULL DEFAULT '',
        app         TEXT NOT NULL DEFAULT '',
        protocol    TEXT NOT NULL DEFAULT '',
        n_cores     INTEGER NOT NULL DEFAULT 0,
        status      TEXT NOT NULL DEFAULT 'ok',
        metrics     TEXT NOT NULL DEFAULT '{}',
        payload     TEXT NOT NULL DEFAULT '{}',
        error       TEXT NOT NULL DEFAULT '',
        traceback   TEXT NOT NULL DEFAULT '',
        source      TEXT NOT NULL DEFAULT '',
        created_at  TEXT NOT NULL DEFAULT '',
        UNIQUE (kind, config_hash, seed, git_rev, cell_key)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_records_kind ON records (kind)",
    "CREATE INDEX IF NOT EXISTS idx_records_series ON records (series)",
    "CREATE INDEX IF NOT EXISTS idx_records_rev ON records (git_rev)",
)

#: The store's cache key — the dedupe/replace identity of one row.
CacheKey = Tuple[str, str, int, str, str]


@dataclass
class Record:
    """One result row, as the Python API sees it."""

    kind: str
    cell_key: str
    config_hash: str = ""
    seed: int = 0
    git_rev: str = ""
    series: str = ""
    app: str = ""
    protocol: str = ""
    n_cores: int = 0
    status: str = STATUS_OK
    metrics: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    error: str = ""
    traceback: str = ""
    source: str = ""
    created_at: str = ""
    rowid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown record kind {self.kind!r} "
                             f"(choices: {', '.join(KINDS)})")
        if not self.series:
            self.series = self.cell_key

    @property
    def cache_key(self) -> CacheKey:
        return (self.kind, self.config_hash, self.seed, self.git_rev,
                self.cell_key)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def metric(self, name: str) -> Optional[float]:
        value = self.metrics.get(name)
        return float(value) if isinstance(value, (int, float)) else None

    # -- SQLite row mapping --------------------------------------------
    def to_row(self) -> Tuple[Any, ...]:
        return (self.kind, self.config_hash, int(self.seed), self.git_rev,
                self.cell_key, self.series, self.app, self.protocol,
                int(self.n_cores), self.status,
                json.dumps(self.metrics, sort_keys=True),
                json.dumps(self.payload, sort_keys=True),
                self.error, self.traceback, self.source, self.created_at)

    @classmethod
    def from_row(cls, row: Tuple[Any, ...]) -> "Record":
        (rowid, kind, config_hash, seed, git_rev, cell_key, series, app,
         protocol, n_cores, status, metrics, payload, error, traceback,
         source, created_at) = row
        return cls(kind=kind, cell_key=cell_key, config_hash=config_hash,
                   seed=int(seed), git_rev=git_rev, series=series, app=app,
                   protocol=protocol, n_cores=int(n_cores), status=status,
                   metrics=json.loads(metrics), payload=json.loads(payload),
                   error=error, traceback=traceback, source=source,
                   created_at=created_at, rowid=rowid)


ROW_COLUMNS = ("kind", "config_hash", "seed", "git_rev", "cell_key",
               "series", "app", "protocol", "n_cores", "status", "metrics",
               "payload", "error", "traceback", "source", "created_at")

__all__ = ["CacheKey", "DDL", "KINDS", "KIND_BENCH_MACRO", "KIND_BENCH_META",
           "KIND_BENCH_MICRO", "KIND_CHAOS", "KIND_PROFILE", "KIND_SWEEP",
           "ROW_COLUMNS", "Record", "SCHEMA", "STATUS_FAILED", "STATUS_OK"]
