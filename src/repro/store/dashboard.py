"""Static HTML regression dashboard: metric trends across revisions.

:func:`render_dashboard` emits one self-contained HTML file (inline SVG,
no JavaScript, no external assets) from a result store:

* macro throughput (cycles/sec) per benchmark cell across revisions;
* micro primitive throughput (ops/sec) across revisions;
* commit latency and squash rate per sweep cell across revisions;
* a failure table (campaign cells stored with ``status='failed'``);
* links to any Perfetto traces referenced by stored records.

Chart discipline (see docs/experiments.md): categorical series colors
are assigned in a fixed validated order and never cycled — a chart shows
at most :data:`MAX_SERIES` series and folds the rest into its data
table, which every chart carries as an expandable accessible fallback.
Light and dark palettes are both explicit (the dark steps are selected,
not auto-inverted).
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.store.db import ResultStore
from repro.store.query import TrendPoint, trends_by_series
from repro.store.schema import (KIND_BENCH_MACRO, KIND_BENCH_MICRO,
                                KIND_SWEEP, STATUS_FAILED)

PathLike = Union[str, Path]

#: Validated categorical palette (light, dark) — fixed slot order; the
#: ordering is the colorblind-safety mechanism, so never reshuffle it.
SERIES_COLORS: Tuple[Tuple[str, str], ...] = (
    ("#2a78d6", "#3987e5"),   # blue
    ("#eb6834", "#d95926"),   # orange
    ("#1baf7a", "#199e70"),   # aqua
    ("#eda100", "#c98500"),   # yellow
    ("#e87ba4", "#d55181"),   # magenta
    ("#008300", "#008300"),   # green
    ("#4a3aa7", "#9085e9"),   # violet
    ("#e34948", "#e66767"),   # red
)

#: Hard series cap per chart: beyond 8 slots identity cannot stay
#: colorblind-distinguishable, so extra series fold into the table.
MAX_SERIES = len(SERIES_COLORS)

_W, _H = 720, 260
_ML, _MR, _MT, _MB = 62, 16, 14, 34


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3g}"


def _ticks(lo: float, hi: float, n: int = 4) -> List[float]:
    import math
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / n
    mag = 10.0 ** math.floor(math.log10(raw)) if raw > 0 else 1.0
    step = next(s * mag for s in (1, 2, 2.5, 5, 10) if raw <= s * mag)
    first = math.floor(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step / 2:
        if t >= lo - step / 2:
            ticks.append(t)
        t += step
    return ticks or [lo, hi]


def _line_chart(title: str, unit: str,
                series: Dict[str, List[TrendPoint]],
                revs: Sequence[str]) -> str:
    """One titled SVG line chart + its expandable data table."""
    shown = dict(list(series.items())[:MAX_SERIES])
    folded = len(series) - len(shown)
    rev_index = {rev: i for i, rev in enumerate(revs)}
    values = [p.value for pts in shown.values() for p in pts]
    if not values or not revs:
        return ""
    lo, hi = min(values), max(values)
    lo = min(lo, 0.0) if lo > 0 and lo < hi * 0.5 else lo
    if lo == hi:
        lo, hi = lo - abs(lo) * 0.1 - 1, hi + abs(hi) * 0.1 + 1
    plot_w, plot_h = _W - _ML - _MR, _H - _MT - _MB

    def x_of(rev: str) -> float:
        n = max(1, len(revs) - 1)
        return _ML + plot_w * (rev_index[rev] / n if n else 0.5)

    def y_of(v: float) -> float:
        return _MT + plot_h * (1 - (v - lo) / (hi - lo))

    parts: List[str] = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{html.escape(title)}">']
    # recessive grid + y axis labels (text wears ink, never series color)
    for t in _ticks(lo, hi):
        y = y_of(t)
        parts.append(f'<line class="grid" x1="{_ML}" y1="{y:.1f}" '
                     f'x2="{_W - _MR}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{_ML - 6}" y="{y + 3:.1f}" '
                     f'text-anchor="end">{_fmt(t)}</text>')
    for rev in revs:
        x = x_of(rev)
        parts.append(f'<text class="tick" x="{x:.1f}" y="{_H - _MB + 16}" '
                     f'text-anchor="middle">{html.escape(rev or "?")}'
                     f'</text>')
    parts.append(f'<line class="axis" x1="{_ML}" y1="{_H - _MB}" '
                 f'x2="{_W - _MR}" y2="{_H - _MB}"/>')
    # 2px lines + >=8px markers; every marker carries a native tooltip
    for slot, (name, pts) in enumerate(shown.items()):
        color = f"var(--series-{slot + 1})"
        coords = [(x_of(p.git_rev), y_of(p.value), p) for p in pts
                  if p.git_rev in rev_index]
        if len(coords) > 1:
            d = " ".join(f"{'M' if i == 0 else 'L'}{x:.1f},{y:.1f}"
                         for i, (x, y, _) in enumerate(coords))
            parts.append(f'<path class="line" d="{d}" '
                         f'stroke="{color}"/>')
        for x, y, p in coords:
            tip = (f"{name} @ {p.git_rev or '?'}: {_fmt(p.value)} {unit}"
                   + (f" (mean of {p.n_samples})" if p.n_samples > 1
                      else ""))
            parts.append(f'<circle class="pt" cx="{x:.1f}" cy="{y:.1f}" '
                         f'r="4" fill="{color}">'
                         f'<title>{html.escape(tip)}</title></circle>')
    parts.append("</svg>")

    legend = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--series-{slot + 1})"></span>'
        f'{html.escape(name)}</span>'
        for slot, name in enumerate(shown)) if len(shown) > 1 else ""
    fold_note = (f'<p class="note">+{folded} more series in the '
                 f'data table below (8-series color cap).</p>'
                 if folded > 0 else "")

    head = "".join(f"<th>{html.escape(rev or '?')}</th>" for rev in revs)
    rows = []
    for name, pts in series.items():
        by_rev = {p.git_rev: p.value for p in pts}
        cells = "".join(
            f"<td>{_fmt(by_rev[rev]) if rev in by_rev else '—'}</td>"
            for rev in revs)
        rows.append(f"<tr><th>{html.escape(name)}</th>{cells}</tr>")
    table = (f'<details><summary>Data table ({len(series)} series x '
             f'{len(revs)} revisions, {unit})</summary>'
             f'<table><tr><th>series</th>{head}</tr>{"".join(rows)}'
             f'</table></details>')
    return (f'<figure><figcaption>{html.escape(title)} '
            f'<span class="unit">({html.escape(unit)})</span>'
            f'</figcaption>{legend}{"".join(parts)}'
            f'{fold_note}{table}</figure>')


def _trace_links(store: ResultStore) -> List[Tuple[str, str]]:
    """(label, path) pairs for every Perfetto trace a record references."""
    links: List[Tuple[str, str]] = []
    for record in store.query():
        payload = record.payload if isinstance(record.payload, dict) else {}
        for key in ("trace_out", "perfetto", "trace"):
            path = payload.get(key)
            if isinstance(path, str) and path:
                links.append((f"{record.kind}/{record.series}", path))
    return links


_STYLE = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --grid: #f0efec; --axis: #d9d8d3; --card: #ffffff;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
    --grid: #2a2a28; --axis: #3a3a37; --card: #222221;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
  }
}
body { background: var(--surface); color: var(--ink); margin: 2rem auto;
       max-width: 60rem; font: 15px/1.45 system-ui, sans-serif; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
p, td, th, figcaption, summary { color: var(--ink); }
.meta, .note, .unit, .tick { color: var(--ink-2); }
figure { margin: 1rem 0 2rem; background: var(--card);
         border: 1px solid var(--grid); border-radius: 8px;
         padding: 12px 16px; }
figcaption { font-weight: 600; margin-bottom: 4px; }
svg { width: 100%; height: auto; display: block; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
svg .line { fill: none; stroke-width: 2; }
svg .pt { stroke: var(--card); stroke-width: 2; }
svg .tick, svg text { fill: var(--ink-2); font-size: 11px;
                      font-family: system-ui, sans-serif; }
.key { margin-right: 14px; font-size: 13px; }
.swatch { display: inline-block; width: 10px; height: 10px;
          border-radius: 2px; margin-right: 5px; }
table { border-collapse: collapse; margin-top: 8px; font-size: 13px; }
td, th { border: 1px solid var(--grid); padding: 3px 8px;
         text-align: right; }
th:first-child { text-align: left; }
.fail { color: #b3261e; }
code { background: var(--grid); padding: 1px 4px; border-radius: 3px; }
"""


def render_dashboard(store: ResultStore,
                     title: str = "repro result store") -> str:
    """The full dashboard document as an HTML string."""
    counts = store.counts()
    revs_all = store.revisions()
    failures = store.query(status=STATUS_FAILED)

    sections: List[str] = []

    def add_chart(heading: str, kind: str, metric: str, unit: str,
                  blurb: str) -> None:
        series = trends_by_series(store, kind, metric)
        revs = [r for r in store.revisions(kind)
                if any(p.git_rev == r for pts in series.values()
                       for p in pts)]
        chart = _line_chart(heading, unit, series, revs)
        if chart:
            sections.append(f"<h2>{html.escape(heading)}</h2>"
                            f'<p class="meta">{html.escape(blurb)}</p>'
                            f"{chart}")

    add_chart("Macro throughput", KIND_BENCH_MACRO, "cycles_per_sec",
              "cycles/sec",
              "Simulated cycles per host second for each macro benchmark "
              "cell, per revision. Raw wall-clock numbers: compare "
              "host-matched revisions, or gate with `repro store check` "
              "(calibration-normalized).")
    add_chart("Micro primitive throughput", KIND_BENCH_MICRO,
              "ops_per_sec", "ops/sec",
              "The simulator's hottest primitives in isolation "
              "(signature ops, event-queue churn, NoC transit).")
    add_chart("Commit latency", KIND_SWEEP, "mean_commit_latency",
              "cycles",
              "Mean chunk-commit latency per sweep cell — the paper's "
              "Figure 13 metric, tracked across revisions.")
    add_chart("Squash rate", KIND_SWEEP, "squash_rate", "squashes/chunk",
              "Conflict + aliasing squashes per committed chunk "
              "(Section 6.1's 1.5% + 2.3%), tracked across revisions.")

    if failures:
        rows = "".join(
            f"<tr><th>{html.escape(r.kind)}/{html.escape(r.cell_key)}</th>"
            f"<td>{html.escape(r.git_rev or '?')}</td>"
            f'<td class="fail">{html.escape(r.error[:160])}</td></tr>'
            for r in failures[:50])
        more = (f'<p class="note">showing 50 of {len(failures)} '
                f'failures</p>' if len(failures) > 50 else "")
        sections.append(
            f"<h2>Failed cells</h2><table><tr><th>cell</th><th>rev</th>"
            f"<th>error</th></tr>{rows}</table>{more}")

    links = _trace_links(store)
    if links:
        items = "".join(
            f"<li>{html.escape(label)} — <code>{html.escape(path)}</code>"
            f"</li>" for label, path in links[:100])
        sections.append(
            "<h2>Perfetto traces</h2>"
            '<p class="meta">Open each file at '
            '<a href="https://ui.perfetto.dev">ui.perfetto.dev</a>.</p>'
            f"<ul>{items}</ul>")

    kinds = ", ".join(f"{k}: {v}" for k, v in counts.items()) or "empty"
    meta = store.meta()
    return (
        "<!doctype html><html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f'<p class="meta">schema {html.escape(meta.get("schema", "?"))} · '
        f"{kinds} · {len(revs_all)} revision(s): "
        f'{html.escape(", ".join(r or "?" for r in revs_all))}</p>'
        + "".join(sections)
        + ("<p class=\"meta\">No plottable records yet — ingest "
           "artifacts or run a campaign first.</p>" if not sections
           else "")
        + "</body></html>")


def write_dashboard(store: ResultStore, out: PathLike,
                    title: Optional[str] = None) -> Path:
    """Render and atomically write the dashboard; returns the path."""
    from repro.harness.sweep import atomic_write_text
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = render_dashboard(store, title or f"repro result store "
                                           f"({store.path.name})")
    atomic_write_text(out, doc)
    return out


__all__ = ["MAX_SERIES", "SERIES_COLORS", "render_dashboard",
           "write_dashboard"]
