"""``python -m repro store``: the persistent experiment service CLI.

Subcommands::

    repro store ingest PATH... --store results.db     # adapt artifacts
    repro store campaign SPEC.json --store results.db # resumable matrix
    repro store campaign --quick --store results.db   # builtin CI matrix
    repro store query --store results.db --kind sweep --app Radix
    repro store check --store results.db --kind bench_macro \\
        --metric cycles_per_sec --last 5 --threshold 0.10
    repro store dashboard --store results.db --out dashboard.html
    repro store export --store results.db --kind sweep --out sweep.json
    repro store info --store results.db               # counts + integrity

Exit codes: ``check`` exits 1 on any regression; ``campaign`` exits 1
when any cell failed; ``info`` exits 1 when the integrity check fails.
See docs/experiments.md for the schema and the campaign spec format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.store.db import ResultStore, StoreError
from repro.store.schema import KINDS


def _open(args: argparse.Namespace, create: bool = True) -> ResultStore:
    return ResultStore(args.store, create=create)


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.store.ingest import ingest_path
    with _open(args) as store:
        total = 0
        for path in args.paths:
            kind, n = ingest_path(store, path, git_rev=args.rev)
            total += n
            print(f"ingested {path}: {kind}, {n} row(s)")
        counts = ", ".join(f"{k}={v}" for k, v in store.counts().items())
        print(f"{args.store}: {total} row(s) written ({counts})")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.store.campaign import QUICK_SPEC, CampaignSpec, run_campaign
    if args.quick:
        spec = QUICK_SPEC
    elif args.spec is not None:
        spec = CampaignSpec.load(args.spec)
    else:
        raise SystemExit("campaign needs a SPEC.json (or --quick)")
    from repro.harness.parallel import resolve_jobs
    with _open(args) as store:
        report = run_campaign(spec, store, jobs=resolve_jobs(args.jobs),
                              rerun_failed=args.rerun_failed,
                              ignore_rev=args.ignore_rev)
    # machine-checkable one-liner (the CI resume check greps it)
    print(f"result: total={report.total} ran={len(report.ran)} "
          f"skipped={len(report.skipped)} failed={len(report.failed)}")
    return 1 if report.failed else 0


def _cmd_query(args: argparse.Namespace) -> int:
    with _open(args, create=False) as store:
        rows = store.query(args.kind, app=args.app, protocol=args.protocol,
                           n_cores=args.cores, git_rev=args.rev,
                           series=args.series, status=args.status,
                           limit=args.limit)
        if args.json:
            doc = [{"kind": r.kind, "cell_key": r.cell_key,
                    "series": r.series, "config_hash": r.config_hash,
                    "seed": r.seed, "git_rev": r.git_rev, "app": r.app,
                    "protocol": r.protocol, "n_cores": r.n_cores,
                    "status": r.status, "metrics": r.metrics,
                    "source": r.source, "created_at": r.created_at}
                   for r in rows]
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        for r in rows:
            metric = args.metric and r.metric(args.metric)
            extra = (f" {args.metric}={metric:.6g}" if metric is not None
                     else "")
            print(f"{r.kind:12s} {r.git_rev or '-':10s} {r.status:7s} "
                  f"{r.cell_key}{extra}")
        print(f"{len(rows)} row(s)")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.store.query import check_regressions
    with _open(args, create=False) as store:
        regressions = check_regressions(
            store, args.kind, args.metric, threshold=args.threshold,
            last=args.last,
            lower_better=True if args.lower_better else None,
            normalize=not args.no_normalize)
        n_revs = len(store.revisions(args.kind))
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} ({args.kind}/{args.metric}, "
              f"last {args.last} revisions):")
        for reg in regressions:
            print(f"  {reg.render()}")
        return 1
    print(f"no {args.kind}/{args.metric} regression beyond "
          f"{args.threshold:.0%} across {min(n_revs, args.last)} of "
          f"{n_revs} stored revision(s)")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.store.dashboard import write_dashboard
    with _open(args, create=False) as store:
        path = write_dashboard(store, args.out, title=args.title)
        counts = sum(store.counts().values())
    text = Path(path).read_text()
    n_charts = text.count("<svg")
    print(f"wrote {path}: {n_charts} chart(s) over {counts} stored "
          f"row(s)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.store.ingest import export_bench, export_sweep
    with _open(args, create=False) as store:
        if args.kind == "sweep":
            doc = export_sweep(store, git_rev=args.rev, source=args.source)
        elif args.kind == "bench":
            doc = export_bench(store, doc_prefix=args.doc)
        else:
            raise SystemExit("export supports --kind sweep|bench")
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out is None:
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text)
        print(f"exported {args.kind} -> {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    with _open(args, create=False) as store:
        meta = store.meta()
        counts = store.counts()
        revs = store.revisions()
        integrity = store.integrity_check()
        failed = len(store.query(status="failed"))
    print(f"{args.store}: schema {meta.get('schema')}, created "
          f"{meta.get('created_at', '?')}")
    for kind in KINDS:
        if kind in counts:
            print(f"  {kind:12s} {counts[kind]:6d} row(s)")
    print(f"  revisions   {len(revs)}: "
          f"{', '.join(r or '<none>' for r in revs) or '-'}")
    print(f"  failed rows {failed}")
    print(f"  integrity   {integrity}")
    return 0 if integrity == "ok" else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="persistent experiment service: SQLite result store, "
                    "resumable campaigns, regression gating, dashboard "
                    "(see docs/experiments.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", type=Path, required=True, metavar="DB",
                       help="result store database path")

    p = sub.add_parser("ingest", help="adapt existing result artifacts "
                                      "(BENCH_*.json, sweep caches, chaos "
                                      "artifacts, profile reports)")
    p.add_argument("paths", nargs="+", metavar="PATH")
    add_store(p)
    p.add_argument("--rev", default=None,
                   help="git revision to stamp on records that carry none "
                        "(default: current checkout)")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser("campaign", help="run a declarative matrix, "
                                        "deduped and checkpointed")
    p.add_argument("spec", nargs="?", default=None, metavar="SPEC.json")
    add_store(p)
    p.add_argument("--quick", action="store_true",
                   help="builtin smoke matrix (2 apps x 8 cores x all "
                        "four protocols)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores)")
    p.add_argument("--rerun-failed", action="store_true",
                   help="re-run cells whose stored row is failed")
    p.add_argument("--ignore-rev", action="store_true",
                   help="dedupe against any revision, not just HEAD")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser("query", help="filter stored rows")
    add_store(p)
    p.add_argument("--kind", default=None, choices=KINDS)
    p.add_argument("--app", default=None)
    p.add_argument("--protocol", default=None)
    p.add_argument("--cores", type=int, default=None)
    p.add_argument("--rev", default=None)
    p.add_argument("--series", default=None)
    p.add_argument("--status", default=None, choices=("ok", "failed"))
    p.add_argument("--metric", default=None,
                   help="also print this metric per row")
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--json", action="store_true",
                   help="emit matching rows as JSON")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("check", help="regression gate: newest revision "
                                     "vs the best of the last N")
    add_store(p)
    p.add_argument("--kind", required=True, choices=KINDS)
    p.add_argument("--metric", required=True,
                   help="stored metric name (e.g. cycles_per_sec, "
                        "ops_per_sec, mean_commit_latency, squash_rate)")
    p.add_argument("--last", type=int, default=5, metavar="N",
                   help="revision window (default 5)")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="relative slip that fails the gate (default 10%%)")
    p.add_argument("--lower-better", action="store_true",
                   help="force lower-is-better (otherwise inferred from "
                        "the metric name)")
    p.add_argument("--no-normalize", action="store_true",
                   help="skip calibration normalization for bench rows")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("dashboard", help="export the static HTML trend "
                                         "dashboard")
    add_store(p)
    p.add_argument("--out", type=Path, required=True, metavar="HTML")
    p.add_argument("--title", default=None)
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser("export", help="losslessly re-export an ingested "
                                      "document")
    add_store(p)
    p.add_argument("--kind", required=True, choices=("sweep", "bench"))
    p.add_argument("--out", type=Path, default=None)
    p.add_argument("--rev", default=None, help="sweep: filter by revision")
    p.add_argument("--source", default=None,
                   help="sweep: filter by ingest source")
    p.add_argument("--doc", default=None,
                   help="bench: document prefix (date.docid)")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("info", help="store summary + integrity check")
    add_store(p)
    p.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except StoreError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
