"""Resumable campaign runner: a declarative run matrix over the store.

A *campaign spec* is a small JSON document describing a run matrix::

    {
      "name": "scaling-study",
      "apps": ["Radix", "LU"],
      "cores": [8, 16],
      "protocols": ["ScalableBulk", "TCC"],   // optional: all four
      "chunks": 2,                            // optional: 2
      "seeds": [2010, 7],                     // optional: config default
      "baseline1p": true                      // optional: true
    }

Expansion mirrors the sweep matrix exactly — per app a single-processor
ScalableBulk baseline on the largest machine, then every (cores,
protocol) cell with ``n_partitions`` pinned to the largest machine — so
a campaign's stored records are identical to the equivalent serial
sweep's modulo wall-clock fields.

The runner is a *service loop* over that matrix:

* **dedupe** — cells whose cache key ``(kind, config_hash, seed,
  git_rev, cell_key)`` is already stored are skipped (``ignore_rev``
  widens the match to any revision);
* **fan-out** — pending cells run over
  :func:`repro.harness.parallel.run_ordered` worker processes;
* **checkpoint** — every completed cell commits in its own transaction,
  so SIGINT/SIGKILL mid-campaign loses at most the in-flight cell and a
  rerun resumes with zero completed cells re-executed;
* **failure rows** — a cell that raises is recorded as a first-class
  ``status='failed'`` row carrying the exception and traceback, and the
  campaign keeps going.
"""

from __future__ import annotations

import json
import traceback as traceback_mod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.config import ProtocolKind, SystemConfig
from repro.harness.sweep import key_of
from repro.provenance import config_hash
from repro.store.db import ResultStore, StoreError
from repro.store.ingest import sweep_metrics
from repro.store.schema import (KIND_SWEEP, Record, STATUS_FAILED,
                                STATUS_OK)

PathLike = Union[str, Path]

PROTOCOL_NAMES = tuple(p.value for p in ProtocolKind)
_SPEC_KEYS = frozenset({"name", "apps", "cores", "protocols", "chunks",
                        "seeds", "baseline1p"})


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative run matrix (the JSON document, validated)."""

    name: str
    apps: Tuple[str, ...]
    cores: Tuple[int, ...]
    protocols: Tuple[str, ...] = PROTOCOL_NAMES
    chunks: int = 2
    seeds: Tuple[Optional[int], ...] = (None,)
    baseline1p: bool = True

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "CampaignSpec":
        unknown = sorted(set(doc) - _SPEC_KEYS)
        if unknown:
            raise StoreError(
                f"unknown campaign spec key(s): {', '.join(unknown)} "
                f"(allowed: {', '.join(sorted(_SPEC_KEYS))})")
        for required in ("name", "apps", "cores"):
            if required not in doc:
                raise StoreError(f"campaign spec needs {required!r}")
        protocols = tuple(doc.get("protocols", PROTOCOL_NAMES))
        bad = [p for p in protocols if p not in PROTOCOL_NAMES]
        if bad:
            raise StoreError(
                f"unknown protocol(s) {', '.join(bad)} "
                f"(choices: {', '.join(PROTOCOL_NAMES)})")
        seeds = doc.get("seeds")
        return cls(name=str(doc["name"]),
                   apps=tuple(str(a) for a in doc["apps"]),
                   cores=tuple(int(n) for n in doc["cores"]),
                   protocols=protocols,
                   chunks=int(doc.get("chunks", 2)),
                   seeds=tuple(int(s) for s in seeds) if seeds else (None,),
                   baseline1p=bool(doc.get("baseline1p", True)))

    @classmethod
    def load(cls, path: PathLike) -> "CampaignSpec":
        return cls.from_json(json.loads(Path(path).read_text()))

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "apps": list(self.apps),
                "cores": list(self.cores), "protocols": list(self.protocols),
                "chunks": self.chunks,
                "seeds": [s for s in self.seeds if s is not None] or None,
                "baseline1p": self.baseline1p}


#: The CI smoke matrix: 2 apps x 1 core count x all four protocols.
QUICK_SPEC = CampaignSpec(name="quick", apps=("Radix", "LU"), cores=(8,),
                          chunks=1)


@dataclass(frozen=True)
class CampaignCell:
    """One expanded matrix cell, fully determined and picklable."""

    app: str
    n_cores: int
    protocol: str
    chunks: int
    active_cores: Optional[int]
    n_partitions: int
    seed: Optional[int]

    @property
    def sweep_key(self) -> str:
        """The serial sweep's key for this cell (the row's ``series``)."""
        active = self.active_cores if self.active_cores is not None \
            else self.n_cores
        proto = "baseline1p" if self.active_cores == 1 else self.protocol
        return key_of(self.app, self.n_cores, proto, active)

    @property
    def cell_key(self) -> str:
        """The store cache key's cell discriminator.

        Extends the sweep key with the chunk count and seed so two
        campaigns over the same machine at different workload sizes do
        not collide.
        """
        seed = "default" if self.seed is None else str(self.seed)
        return f"{self.sweep_key}/c{self.chunks}/s{seed}"

    def config(self) -> SystemConfig:
        config = SystemConfig(n_cores=self.n_cores,
                              protocol=ProtocolKind(self.protocol))
        if self.seed is not None:
            config = config.with_(seed=self.seed)
        return config

    def to_payload(self) -> Dict[str, Any]:
        return {"app": self.app, "n_cores": self.n_cores,
                "protocol": self.protocol, "chunks": self.chunks,
                "active_cores": self.active_cores,
                "n_partitions": self.n_partitions, "seed": self.seed}


def expand(spec: CampaignSpec) -> List[CampaignCell]:
    """The spec's full cell list in canonical (serial sweep) order."""
    big = max(spec.cores)
    cells: List[CampaignCell] = []
    for seed in spec.seeds:
        for app in spec.apps:
            if spec.baseline1p:
                cells.append(CampaignCell(
                    app=app, n_cores=big,
                    protocol=ProtocolKind.SCALABLEBULK.value,
                    chunks=spec.chunks, active_cores=1, n_partitions=big,
                    seed=seed))
            for n in spec.cores:
                for proto in spec.protocols:
                    cells.append(CampaignCell(
                        app=app, n_cores=n, protocol=proto,
                        chunks=spec.chunks, active_cores=None,
                        n_partitions=big, seed=seed))
    return cells


def _campaign_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool worker: one cell -> ok record or failure row data.

    Exceptions are *data* here — a failing cell must become a stored
    failure row, not abort the surviving campaign (``run_ordered``
    re-raises worker exceptions).
    """
    from repro.harness.sweep import run_one
    try:
        record = run_one(payload["app"], payload["n_cores"],
                         ProtocolKind(payload["protocol"]),
                         chunks=payload["chunks"],
                         active_cores=payload["active_cores"],
                         n_partitions=payload["n_partitions"],
                         seed=payload["seed"])
        return {"status": STATUS_OK, "record": record}
    except Exception as err:  # noqa: BLE001 - failures are first-class rows
        return {"status": STATUS_FAILED, "error": repr(err),
                "traceback": traceback_mod.format_exc()}


@dataclass
class CampaignReport:
    """What one campaign invocation did (for logs, tests and exit codes)."""

    spec: CampaignSpec
    git_rev: str
    total: int = 0
    ran: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    def summary(self) -> str:
        return (f"campaign {self.spec.name}: total={self.total} "
                f"ran={len(self.ran)} skipped={len(self.skipped)} "
                f"failed={len(self.failed)}")


def run_campaign(spec: CampaignSpec, store: ResultStore, *,
                 jobs: int = 1, log=print, rerun_failed: bool = False,
                 ignore_rev: bool = False) -> CampaignReport:
    """Expand, dedupe, fan out, checkpoint — one campaign pass.

    Safe to invoke repeatedly: completed cells are never re-run (the
    resume contract), failed cells re-run only with ``rerun_failed``.
    """
    from repro.harness.parallel import run_ordered
    from repro.provenance import git_rev as current_rev

    rev = current_rev() or ""
    report = CampaignReport(spec=spec, git_rev=rev)
    cells = expand(spec)
    report.total = len(cells)

    pending: List[CampaignCell] = []
    for cell in cells:
        hash_ = config_hash(cell.config())
        seed = cell.config().seed
        status = store.status_of(KIND_SWEEP, hash_, seed,
                                 None if ignore_rev else rev, cell.cell_key)
        if status == STATUS_OK or (status == STATUS_FAILED
                                   and not rerun_failed):
            report.skipped.append(cell.cell_key)
        else:
            pending.append(cell)
    log(f"campaign {spec.name}: {len(cells)} cells, "
        f"{len(report.skipped)} cached, {len(pending)} to run "
        f"(rev {rev or '<none>'}, jobs={jobs})")

    def checkpoint(i: int, _payload: Dict[str, Any],
                   result: Dict[str, Any]) -> None:
        cell = pending[i]
        config = cell.config()
        if result["status"] == STATUS_OK:
            rec = result["record"]
            row = Record(kind=KIND_SWEEP, cell_key=cell.cell_key,
                         series=cell.sweep_key,
                         config_hash=str(rec.get("config_hash", "")),
                         seed=config.seed, git_rev=rev, app=cell.app,
                         protocol=cell.protocol, n_cores=cell.n_cores,
                         metrics=sweep_metrics(rec), payload=rec,
                         source=f"campaign:{spec.name}")
            report.ran.append(cell.cell_key)
            note = f"{rec['total_cycles']} cycles ({rec['wall_seconds']}s)"
        else:
            row = Record(kind=KIND_SWEEP, cell_key=cell.cell_key,
                         series=cell.sweep_key,
                         config_hash=config_hash(config), seed=config.seed,
                         git_rev=rev, app=cell.app, protocol=cell.protocol,
                         n_cores=cell.n_cores, status=STATUS_FAILED,
                         payload=cell.to_payload(),
                         error=result["error"],
                         traceback=result["traceback"],
                         source=f"campaign:{spec.name}")
            report.failed.append(cell.cell_key)
            note = f"FAILED: {result['error']}"
        store.put(row)  # one transaction: the crash-safe checkpoint
        log(f"[{i + 1}/{len(pending)}] {cell.cell_key}: {note}")

    run_ordered(_campaign_worker, [c.to_payload() for c in pending],
                jobs=jobs, on_result=checkpoint)
    log(report.summary())
    return report


__all__ = ["CampaignCell", "CampaignReport", "CampaignSpec", "QUICK_SPEC",
           "expand", "run_campaign"]
