"""Core model: burst execution of chunked access traces, squash/commit flow.

Execution model (paper Section 5): in-order cores, one instruction per
cycle, memory stalls on top.  Within a chunk the core runs in *bursts*:
local cache hits are costed synchronously; an L2 miss suspends the burst,
issues a read to the line's home directory, and resumes when data returns
(or retries on a nack while the line is locked by a commit, Section 3.1).

Chunk lifecycle::

    EXECUTING --exec done--> WAIT_COMMIT --head of queue--> COMMITTING
        ^                                                        |
        |                  squash (conflict / alias)             v
        +----------------- re-execute (gen+1) <------- COMMITTED / SQUASHED

A core may have up to ``max_active_chunks_per_core`` chunks alive (default
2: one executing, one committing).  Commits from one core are strictly
ordered: only the oldest completed chunk has a commit request in flight.
Squashing a chunk also squashes every younger active chunk of that core
(they may have consumed its speculative data).

Time accounting matches the paper's Figure 7/8 breakdown:

* **Useful** — 1 cycle per instruction of chunks that eventually commit;
* **Cache Miss** — stall cycles of chunks that eventually commit;
* **Commit** — cycles the core is blocked because all chunk slots are
  occupied by not-yet-committed chunks;
* **Squash** — wall-clock execution time of attempts that were squashed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.config import SystemConfig
from repro.cpu.chunk import Chunk, ChunkSpec, ChunkState, ChunkTag
from repro.engine.events import Event, Simulator
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.page_map import PageMapper
from repro.network.message import MessageType, core_node, dir_node
from repro.network.noc import Network
from repro.obs.bus import NULL_BUS, NullBus
from repro.signatures.bulk_signature import SignatureFactory


@dataclass
class CoreStats:
    """Per-core cycle and event accounting."""

    useful_cycles: int = 0
    miss_stall_cycles: int = 0
    commit_stall_cycles: int = 0
    squash_cycles: int = 0
    chunks_committed: int = 0
    chunks_started: int = 0
    squashes_conflict: int = 0   #: squashes due to true data conflicts
    squashes_alias: int = 0      #: squashes due to signature aliasing
    read_nacks: int = 0
    overflow_truncations: int = 0
    finish_time: int = 0

    @property
    def total_accounted(self) -> int:
        return (self.useful_cycles + self.miss_stall_cycles
                + self.commit_stall_cycles + self.squash_cycles)


class _ExecCtx:
    """State of the currently executing chunk attempt."""

    __slots__ = ("chunk", "idx", "epoch", "consumed_instr", "acc_useful",
                 "acc_miss", "waiting_line", "waiting_is_write",
                 "waiting_since", "pending_event")

    def __init__(self, chunk: Chunk, epoch: int) -> None:
        self.chunk = chunk
        self.idx = 0
        self.epoch = epoch
        self.consumed_instr = 0
        self.acc_useful = 0
        self.acc_miss = 0
        self.waiting_line: Optional[int] = None
        self.waiting_is_write = False
        self.waiting_since = 0
        self.pending_event: Optional[Event] = None


class Core:
    """One processor tile: executes chunks and drives the commit queue."""

    def __init__(self, core_id: int, config: SystemConfig, sim: Simulator,
                 network: Network, page_mapper: PageMapper,
                 sig_factory: SignatureFactory,
                 next_spec: Callable[[int], Optional[ChunkSpec]]) -> None:
        self.core_id = core_id
        self.config = config
        self.sim = sim
        self.network = network
        self.page_mapper = page_mapper
        self.sig_factory = sig_factory
        self.next_spec = next_spec
        self.node = core_node(core_id)
        self.hierarchy = CacheHierarchy(core_id, config, self._send_writeback)
        self.stats = CoreStats()
        self.engine = None  #: protocol processor engine, attached by the runner
        self.obs: NullBus = NULL_BUS  #: instrumentation sink (repro.obs)

        self._exec: Optional[_ExecCtx] = None
        self._epoch = 0
        self._next_seq = 0
        self._commit_queue: List[Chunk] = []      # oldest first; head may be in flight
        self._respec: Deque[Chunk] = deque()      # squashed chunks to re-execute
        self._blocked_since: Optional[int] = None
        self.finished = False
        self._workload_exhausted = False
        self._line_bytes = config.line_bytes

    # ------------------------------------------------------------------
    # Introspection for protocol engines
    # ------------------------------------------------------------------
    def active_chunks(self) -> List[Chunk]:
        """All live chunks, oldest first (commit queue then executing)."""
        chunks = list(self._commit_queue)
        if self._exec is not None:
            chunks.append(self._exec.chunk)
        return chunks

    @property
    def committing_head(self) -> Optional[Chunk]:
        """The chunk whose commit request is in flight, if any."""
        if self._commit_queue and self._commit_queue[0].state is ChunkState.COMMITTING:
            return self._commit_queue[0]
        return None

    # ------------------------------------------------------------------
    # Startup / teardown
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.sim.schedule(0, self._try_start_exec)

    def _maybe_finish(self) -> None:
        if (self._workload_exhausted and self._exec is None
                and not self._respec and not self._commit_queue
                and not self.finished):
            self.finished = True
            self.stats.finish_time = self.sim.now

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _try_start_exec(self) -> None:
        if self._exec is not None or self.finished:
            return
        if len(self._commit_queue) >= self.config.max_active_chunks_per_core:
            if self._blocked_since is None:
                self._blocked_since = self.sim.now
            return
        chunk = self._pull_next_chunk()
        if chunk is None:
            self._workload_exhausted = True
            self._maybe_finish()
            return
        chunk.state = ChunkState.EXECUTING
        chunk.start_time = self.sim.now
        self._epoch += 1
        self._exec = _ExecCtx(chunk, self._epoch)
        self.stats.chunks_started += 1
        if self.obs.enabled:
            self.obs.exec_start(self.sim.now, self.core_id, chunk.tag)
        self._run_burst()

    def _pull_next_chunk(self) -> Optional[Chunk]:
        if self._respec:
            return self._respec.popleft()
        spec = self.next_spec(self.core_id)
        if spec is None:
            return None
        tag = ChunkTag(self.core_id, self._next_seq, 0)
        self._next_seq += 1
        return Chunk(tag=tag, spec=spec, sig_factory=self.sig_factory,
                     line_bytes=self._line_bytes)

    def _run_burst(self) -> None:
        """Advance the current chunk until a remote miss or completion."""
        ctx = self._exec
        assert ctx is not None
        chunk = ctx.chunk
        accesses = chunk.spec.accesses
        elapsed = 0
        truncated = False

        while ctx.idx < len(accesses):
            gap, byte_addr, is_write = accesses[ctx.idx]
            elapsed += gap + 1
            ctx.consumed_instr += gap + 1
            ctx.acc_useful += gap + 1
            line = byte_addr // self._line_bytes
            page = byte_addr // self.config.page_bytes
            home = self.page_mapper.home_of_page(page, self.core_id)
            chunk.record(line, is_write, home)

            result = self.hierarchy.access(line, is_write, chunk.tag)
            if result.remote:
                ctx.idx += 1
                ctx.waiting_line = line
                ctx.waiting_is_write = is_write
                # the stall clock starts when the core reaches the access
                ctx.waiting_since = self.sim.now + elapsed
                prefetches = self._lookahead_misses(ctx, line)
                ctx.pending_event = self.sim.schedule(
                    elapsed,
                    lambda e=ctx.epoch, l=line, pf=prefetches:
                        self._issue_read(e, l, pf),
                )
                return
            ctx.acc_miss += result.stall_cycles
            elapsed += result.stall_cycles
            if result.overflow_ctag == chunk.tag:
                truncated = True
                chunk.truncated = True
                self.stats.overflow_truncations += 1
                ctx.idx += 1
                break
            ctx.idx += 1

        if not truncated:
            trailing = max(0, chunk.spec.n_instructions - ctx.consumed_instr)
            elapsed += trailing
            ctx.acc_useful += trailing
        ctx.pending_event = self.sim.schedule(
            elapsed, lambda e=ctx.epoch: self._exec_complete(e))

    def _lookahead_misses(self, ctx: _ExecCtx, blocking_line: int) -> list:
        """ROB/MSHR overlap: further missing lines of this chunk that can
        be fetched concurrently with the blocking miss."""
        budget = self.config.mlp_lookahead - 1
        if budget <= 0:
            return []
        found: List[int] = []
        seen = {blocking_line}
        accesses = ctx.chunk.spec.accesses
        for j in range(ctx.idx, min(ctx.idx + 24, len(accesses))):
            line = accesses[j].byte_addr // self._line_bytes
            if line in seen:
                continue
            seen.add(line)
            if (self.hierarchy.l1.peek(line) is None
                    and self.hierarchy.l2.peek(line) is None):
                found.append(line)
                if len(found) >= budget:
                    break
        return found

    def _issue_read(self, epoch: int, line: int, prefetches=()) -> None:
        ctx = self._exec
        if ctx is None or ctx.epoch != epoch:
            return
        if ctx.waiting_since == 0:
            ctx.waiting_since = self.sim.now
        for target in (line, *prefetches):
            home = self.page_mapper.home_of_page(
                target * self._line_bytes // self.config.page_bytes,
                self.core_id)
            self.network.unicast(
                MessageType.READ_REQ, self.node, dir_node(home),
                line=target, requester=self.core_id,
            )

    def on_data(self, line: int) -> None:
        """A DATA_FROM_{MEM,SHARER,OWNER} reply arrived."""
        ctx = self._exec
        if ctx is None or ctx.waiting_line != line:
            # Stale reply for a squashed attempt: install and move on.
            self.hierarchy.fill_remote(line)
            return
        result = self.hierarchy.fill_remote(
            line, is_write=ctx.waiting_is_write, ctag=ctx.chunk.tag)
        ctx.acc_miss += max(0, self.sim.now - ctx.waiting_since)
        ctx.waiting_line = None
        ctx.waiting_since = 0
        if ctx.pending_event is not None:
            # a not-yet-fired issue for this line (its prefetch beat it)
            ctx.pending_event.cancel()
            ctx.pending_event = None
        if result.overflow_ctag == ctx.chunk.tag:
            ctx.chunk.truncated = True
            self.stats.overflow_truncations += 1
            self._exec_complete(ctx.epoch)
        else:
            self._run_burst()

    def on_read_nack(self, line: int) -> None:
        """The home directory bounced our read: retry after a backoff."""
        ctx = self._exec
        if ctx is None or ctx.waiting_line != line:
            return
        self.stats.read_nacks += 1
        ctx.pending_event = self.sim.schedule(
            self.config.nack_retry_backoff_cycles,
            lambda e=ctx.epoch, l=line: self._issue_read(e, l),
        )

    def _exec_complete(self, epoch: int) -> None:
        ctx = self._exec
        if ctx is None or ctx.epoch != epoch:
            return
        chunk = ctx.chunk
        chunk.state = ChunkState.WAIT_COMMIT
        chunk.exec_done_time = self.sim.now
        if self.obs.enabled:
            self.obs.exec_done(self.sim.now, self.core_id, chunk.tag)
        # Bank the attempt's cycles on the chunk; they move to core stats
        # only when the chunk commits (squashes waste them instead).
        chunk.acc_useful = ctx.acc_useful
        chunk.acc_miss = ctx.acc_miss
        self._exec = None
        self._commit_queue.append(chunk)
        if len(self._commit_queue) == 1:
            self._send_head_commit()
        self._try_start_exec()

    # ------------------------------------------------------------------
    # Commit flow
    # ------------------------------------------------------------------
    def _send_head_commit(self) -> None:
        head = self._commit_queue[0]
        head.state = ChunkState.COMMITTING
        head.commit_request_time = self.sim.now
        if head.first_commit_request_time < 0:
            head.first_commit_request_time = self.sim.now
        self.engine.request_commit(head)

    def on_commit_success(self, chunk: Chunk) -> None:
        """Protocol engine reports the head chunk committed."""
        assert self._commit_queue and self._commit_queue[0] is chunk, (
            f"commit success for non-head chunk {chunk.tag}")
        self._commit_queue.pop(0)
        chunk.state = ChunkState.COMMITTED
        chunk.commit_done_time = self.sim.now
        if self.obs.enabled:
            self.obs.commit_complete(self.sim.now, self.core_id, chunk.tag,
                                     len(chunk.dirs))
        self.hierarchy.commit_chunk(chunk.tag)
        self.stats.useful_cycles += chunk.acc_useful
        self.stats.miss_stall_cycles += chunk.acc_miss
        self.stats.chunks_committed += 1
        if self._commit_queue:
            self._send_head_commit()
        self._release_block()
        self._try_start_exec()
        self._maybe_finish()

    def _release_block(self) -> None:
        if (self._blocked_since is not None
                and len(self._commit_queue) < self.config.max_active_chunks_per_core):
            self.stats.commit_stall_cycles += self.sim.now - self._blocked_since
            self._blocked_since = None

    # ------------------------------------------------------------------
    # Squash
    # ------------------------------------------------------------------
    def squash_from(self, chunk: Chunk, *, true_conflict: bool) -> List[Chunk]:
        """Squash ``chunk`` and every younger active chunk of this core.

        Returns the squashed chunks (oldest first).  The protocol engine is
        responsible for any in-flight-commit cleanup (recall) for the head.
        """
        victims: List[Chunk] = []
        for c in self.active_chunks():
            if victims or c is chunk:
                victims.append(c)
        if not victims:
            return []

        reason = "conflict" if true_conflict else "alias"
        for i, c in enumerate(victims):
            if self.obs.enabled:
                self.obs.squash(self.sim.now, self.core_id, c.tag, reason)
            end = c.exec_done_time if c.exec_done_time >= 0 else self.sim.now
            if c.state is ChunkState.EXECUTING:
                end = self.sim.now
            self.stats.squash_cycles += max(0, end - c.start_time)
            self.hierarchy.squash_chunk(c.tag)
            c.state = ChunkState.SQUASHED
            if i == 0:
                if true_conflict:
                    self.stats.squashes_conflict += 1
                else:
                    self.stats.squashes_alias += 1
            self._respec.append(c.reset_for_retry())

        victim_set = {id(c) for c in victims}
        self._commit_queue = [c for c in self._commit_queue
                              if id(c) not in victim_set]
        if self._exec is not None and id(self._exec.chunk) in victim_set:
            if self._exec.pending_event is not None:
                self._exec.pending_event.cancel()
            self._exec = None
            self._epoch += 1

        # If the surviving head lost its follower nothing changes; if the
        # head itself was squashed the engine has already cancelled the
        # in-flight request, and a new head (if any) must be (re)requested.
        if self._commit_queue and self._commit_queue[0].state is ChunkState.WAIT_COMMIT:
            self._send_head_commit()
        self._release_block()
        self._try_start_exec()
        return victims

    # ------------------------------------------------------------------
    # Invalidations / writebacks
    # ------------------------------------------------------------------
    def apply_invalidation(self, lines) -> int:
        """Drop the given lines from the local caches; returns hits."""
        return sum(1 for line in lines if self.hierarchy.invalidate(line))

    def _send_writeback(self, line: int) -> None:
        home = self.page_mapper.lookup(
            line * self._line_bytes // self.config.page_bytes)
        if home is None:
            return
        self.network.unicast(
            MessageType.WRITEBACK, self.node, dir_node(home),
            line=line, writer=self.core_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Core({self.core_id}, queue={len(self._commit_queue)}, "
                f"executing={self._exec is not None})")


__all__ = ["Core", "CoreStats"]
