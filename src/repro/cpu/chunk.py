"""Chunks: atomic blocks of instructions with R/W sets and signatures.

A :class:`ChunkSpec` is the *program*: the instruction count and the memory
accesses the chunk performs (produced by a workload generator).  A
:class:`Chunk` is one *execution attempt* of a spec on a core: it carries
the runtime read/write line sets, the R and W signatures, and the set of
home directories touched.  Squashing a chunk resets the runtime state and
bumps the tag generation, so protocol messages from the dead attempt can
never be confused with the re-execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, NamedTuple, Optional, Set, Tuple

from repro.signatures.bulk_signature import BulkSignature, SignatureFactory


class ChunkTag(NamedTuple):
    """The paper's C_Tag: originating processor + local sequence number.

    We add ``gen`` (execution-attempt generation): a squashed-and-restarted
    chunk is a new commit as far as the protocol is concerned, while commit
    *retries* after a group-formation failure keep the same tag (which is
    what the starvation-reservation logic counts).
    """

    core: int
    seq: int
    gen: int = 0

    def next_gen(self) -> "ChunkTag":
        return ChunkTag(self.core, self.seq, self.gen + 1)

    def __str__(self) -> str:
        return f"P{self.core}.c{self.seq}.g{self.gen}"


class ChunkAccess(NamedTuple):
    """One memory access inside a chunk.

    ``gap`` is the number of non-memory instructions executed since the
    previous access (so the sum of gaps + accesses is the chunk size).
    """

    gap: int
    byte_addr: int
    is_write: bool


@dataclass
class ChunkSpec:
    """The immutable program of one chunk."""

    n_instructions: int
    accesses: List[ChunkAccess]

    def __post_init__(self) -> None:
        consumed = sum(a.gap + 1 for a in self.accesses)
        if consumed > self.n_instructions:
            raise ValueError(
                f"accesses consume {consumed} instructions > chunk size "
                f"{self.n_instructions}"
            )

    @property
    def n_accesses(self) -> int:
        return len(self.accesses)


class ChunkState(enum.Enum):
    EXECUTING = "executing"
    WAIT_COMMIT = "wait_commit"     #: execution done, queued behind an older commit
    COMMITTING = "committing"       #: commit request in flight
    COMMITTED = "committed"
    SQUASHED = "squashed"


@dataclass
class Chunk:
    """One execution attempt of a ChunkSpec on a core."""

    tag: ChunkTag
    spec: ChunkSpec
    sig_factory: SignatureFactory
    line_bytes: int

    state: ChunkState = ChunkState.EXECUTING
    read_lines: Set[int] = field(default_factory=set)
    write_lines: Set[int] = field(default_factory=set)
    dirs: Set[int] = field(default_factory=set)          #: g_vec contents
    dirs_written: Set[int] = field(default_factory=set)  #: dirs homing >=1 write
    r_sig: Optional[BulkSignature] = None
    w_sig: Optional[BulkSignature] = None

    # execution bookkeeping
    start_time: int = -1            #: cycle this attempt started executing
    exec_done_time: int = -1
    commit_request_time: int = -1   #: current attempt's request send time
    first_commit_request_time: int = -1
    commit_done_time: int = -1
    commit_failures: int = 0        #: group-formation losses for this tag
    squash_pending: bool = False    #: OCI aliasing corner: defer squash to outcome
    truncated: bool = False         #: ended early by cache overflow
    acc_useful: int = 0             #: instruction cycles banked by this attempt
    acc_miss: int = 0               #: miss-stall cycles banked by this attempt
    commit_order: Tuple[int, ...] = ()  #: traversal order shipped at request

    def __post_init__(self) -> None:
        self.r_sig = self.sig_factory.empty()
        self.w_sig = self.sig_factory.empty()

    # ------------------------------------------------------------------
    def record(self, line_addr: int, is_write: bool, home_dir: int) -> None:
        """Register one access in the runtime sets and signatures."""
        self.dirs.add(home_dir)
        if is_write:
            self.write_lines.add(line_addr)
            self.w_sig.insert(line_addr)
            self.dirs_written.add(home_dir)
        else:
            self.read_lines.add(line_addr)
            self.r_sig.insert(line_addr)

    def g_vec(self) -> Tuple[int, ...]:
        """Sorted tuple of participating directory modules."""
        return tuple(sorted(self.dirs))

    def conflicts_with_write_sig(self, w_sig: BulkSignature) -> bool:
        """Whole-signature intersection test (coarse; high false-positive
        rate at realistic densities — kept for completeness/analysis)."""
        return w_sig.intersects(self.r_sig) or w_sig.intersects(self.w_sig)

    def hit_by_invalidation(self, write_lines) -> bool:
        """Chunk disambiguation as Bulk hardware performs it: each line of
        the committing chunk's expanded write-set is probed for membership
        in our R and W signatures (Section 3.4: squash when W_committing
        intersects R or W).  No false negatives; per-line membership false
        positives produce the paper's *aliasing squashes*.
        """
        r_sig, w_sig = self.r_sig, self.w_sig
        for line in write_lines:
            if r_sig.contains(line) or w_sig.contains(line):
                return True
        return False

    def true_conflict_with(self, write_lines: Set[int]) -> bool:
        """Ground-truth (exact-address) conflict test."""
        return bool(write_lines & self.read_lines) or bool(write_lines & self.write_lines)

    def reset_for_retry(self) -> "Chunk":
        """New attempt after a squash: fresh sets/signatures, gen+1 tag."""
        return Chunk(
            tag=self.tag.next_gen(),
            spec=self.spec,
            sig_factory=self.sig_factory,
            line_bytes=self.line_bytes,
        )

    @property
    def is_active(self) -> bool:
        return self.state in (ChunkState.EXECUTING, ChunkState.WAIT_COMMIT,
                              ChunkState.COMMITTING)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Chunk({self.tag}, {self.state.value}, dirs={sorted(self.dirs)})"


__all__ = ["Chunk", "ChunkAccess", "ChunkSpec", "ChunkState", "ChunkTag"]
