"""Processor model: chunked execution of memory-access traces.

Cores execute fixed-size chunks (default 2000 instructions, Table 2) at
1 IPC, with memory stalls layered on top.  As a chunk executes, the core
builds its read/write line sets, its R and W Bulk signatures, and the list
of home directory modules touched (the ``g_vec`` of Table 1).  Completed
chunks are handed to the machine's commit protocol; squashes roll the
chunk (and any younger active chunk) back to a fresh execution attempt.
"""

from repro.cpu.chunk import Chunk, ChunkAccess, ChunkSpec, ChunkTag
from repro.cpu.core import Core, CoreStats

__all__ = ["Chunk", "ChunkAccess", "ChunkSpec", "ChunkTag", "Core", "CoreStats"]
